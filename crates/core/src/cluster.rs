//! A deterministic single-threaded simulation of the full server cluster,
//! with exact per-server byte accounting of the verification protocol.
//!
//! Used by tests, examples, and the bandwidth experiment (Figure 6). The
//! leader-star topology matches the deployed system: non-leaders exchange
//! messages only with the leader, which is why adding servers barely
//! changes per-server load (Figure 5's observation).

use crate::client::ClientSubmission;
use crate::messages::{pack_decisions, ServerMsg};
use crate::server::{Server, ServerConfig};
use prio_afe::Afe;
use prio_field::FieldElement;
use prio_net::wire::Wire;
use prio_crypto::prg::PrgRng;
use prio_obs::Span;
use prio_snip::{decide, HForm, VerifierContext, VerifyMode};
use rand::Rng;

/// Domain-separation label for the cluster's context-seed stream
/// (ASCII "PRIO cls"), distinct from `Server`'s per-context
/// `CTX_RANDOMNESS_LABEL` ("PRIO ctx") so the two ChaCha20 streams never
/// collide even under equal seeds.
const CLUSTER_CTX_SEED_LABEL: u64 = 0x5052_494f_2063_6c73;

/// Wall-clock time the cluster has spent in each verification phase,
/// accumulated across `process` calls. This is the per-phase breakdown
/// behind the Figure-5 cost curves: `unpack` is dominated by PRG share
/// expansion, `round1` by the circuit re-evaluation and polynomial work,
/// `round2` by the Beaver-triple finish and decision.
#[derive(Copy, Clone, Debug, Default)]
pub struct PhaseTimings {
    /// Blob parsing + PRG expansion into `(x, π)` shares.
    pub unpack: std::time::Duration,
    /// SNIP round 1 (wire re-derivation, `f·g·h` evaluations).
    pub round1: std::time::Duration,
    /// SNIP round 2 + decision.
    pub round2: std::time::Duration,
    /// Accumulator reveal (the publish phase). Filled by the server loop;
    /// the single-threaded cluster's `aggregate` is a read-only fold that
    /// reports into the publish histogram instead.
    pub publish: std::time::Duration,
    /// Submissions these totals cover.
    pub submissions: u64,
}

impl PhaseTimings {
    /// Total *verification* time: unpack + round 1 + round 2. Publish is
    /// deliberately excluded — it reveals the already-verified aggregate
    /// and is not part of the Figure-5 per-submission cost.
    pub fn total(&self) -> std::time::Duration {
        self.unpack + self.round1 + self.round2
    }
}

/// The cluster's span targets: the same `server_phase_us` histograms the
/// server loop feeds, so per-phase latency has one exposition regardless
/// of which execution flavour ran the protocol. [`Cluster::timings`] is
/// rebased on these spans — each phase is clocked once, by the span, and
/// the same measurement lands in both the histogram and the
/// [`PhaseTimings`] accumulator.
struct ClusterPhases {
    unpack: prio_obs::Histogram,
    round1: prio_obs::Histogram,
    round2: prio_obs::Histogram,
    publish: prio_obs::Histogram,
}

impl ClusterPhases {
    fn resolve() -> ClusterPhases {
        let reg = prio_obs::Registry::global();
        ClusterPhases {
            unpack: reg.histogram(prio_obs::names::SERVER_PHASE_US, &[("phase", "unpack")]),
            round1: reg.histogram(prio_obs::names::SERVER_PHASE_US, &[("phase", "round1")]),
            round2: reg.histogram(prio_obs::names::SERVER_PHASE_US, &[("phase", "round2")]),
            publish: reg.histogram(prio_obs::names::SERVER_PHASE_US, &[("phase", "publish")]),
        }
    }
}

/// A simulated `s`-server Prio cluster.
pub struct Cluster<F: FieldElement, A: Afe<F>> {
    servers: Vec<Server<F, A>>,
    ctx: Option<VerifierContext<F>>,
    processed_in_batch: usize,
    /// Submissions per verification context (the paper's `Q ≈ 2^10`).
    batch_size: usize,
    /// Worker threads each server uses for batched round 1 (1 = inline).
    verify_threads: usize,
    ctx_rng: PrgRng,
    /// Verification bytes each server has *sent*.
    sent_bytes: Vec<u64>,
    timings: PhaseTimings,
    phases: ClusterPhases,
}

impl<F: FieldElement, A: Afe<F> + Clone> Cluster<F, A> {
    /// Builds a cluster of `num_servers` servers for the given AFE.
    pub fn new(afe: A, num_servers: usize, verify_mode: VerifyMode) -> Self {
        Self::with_options(afe, num_servers, verify_mode, HForm::PointValue, 1024)
    }

    /// Full-control constructor (h form and context batch size).
    pub fn with_options(
        afe: A,
        num_servers: usize,
        verify_mode: VerifyMode,
        h_form: HForm,
        batch_size: usize,
    ) -> Self {
        assert!(num_servers >= 2, "Prio needs at least two servers");
        assert!(batch_size >= 1);
        let servers = (0..num_servers)
            .map(|index| {
                Server::new(
                    afe.clone(),
                    ServerConfig {
                        index,
                        num_servers,
                        verify_mode,
                        h_form,
                    },
                )
            })
            .collect();
        Cluster {
            servers,
            ctx: None,
            processed_in_batch: 0,
            batch_size,
            verify_threads: 1,
            ctx_rng: PrgRng::from_u64_seed(0x5052_494f, CLUSTER_CTX_SEED_LABEL),
            sent_bytes: vec![0; num_servers],
            timings: PhaseTimings::default(),
            phases: ClusterPhases::resolve(),
        }
    }

    /// Builder-style: worker threads per server for batched round-1
    /// verification ([`Cluster::process_batch`]). Decisions and
    /// accumulators are independent of the thread count.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    pub fn with_verify_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one verify thread");
        self.verify_threads = threads;
        self
    }

    fn refresh_context_if_needed(&mut self) {
        if self.ctx.is_none() || self.processed_in_batch >= self.batch_size {
            let seed: u64 = self.ctx_rng.random();
            self.ctx = Some(
                self.servers[0]
                    .make_context(seed)
                    .expect("cluster config validated at construction"),
            );
            self.processed_in_batch = 0;
        }
    }

    /// Processes one client submission through the full pipeline:
    /// unpack → SNIP verify (with byte accounting) → accumulate/reject.
    /// Returns whether the submission was accepted.
    pub fn process(&mut self, sub: &ClientSubmission<F>) -> bool {
        let s = self.servers.len();
        assert_eq!(sub.blobs.len(), s, "one blob per server");
        self.refresh_context_if_needed();
        self.processed_in_batch += 1;
        self.timings.submissions += 1;
        let ctx = self.ctx.as_ref().expect("context refreshed");

        // Unpack. A structurally malformed blob is rejected outright (the
        // servers can detect this locally; no protocol needed).
        let span = Span::start(&self.phases.unpack);
        let mut unpacked = Vec::with_capacity(s);
        for (i, blob) in sub.blobs.iter().enumerate() {
            match self.servers[i].unpack(blob, sub.prg_label) {
                Ok(pair) => unpacked.push(pair),
                Err(_) => {
                    self.timings.unpack += span.finish();
                    for server in &mut self.servers {
                        server.reject();
                    }
                    return false;
                }
            }
        }
        self.timings.unpack += span.finish();

        // Round 1 at every server.
        let span = Span::start(&self.phases.round1);
        let mut states = Vec::with_capacity(s);
        let mut round1 = Vec::with_capacity(s);
        for (i, (x, proof)) in unpacked.iter().enumerate() {
            match self.servers[i].round1(ctx, x, proof) {
                Ok((st, msg)) => {
                    states.push(st);
                    round1.push(msg);
                }
                Err(_) => {
                    self.timings.round1 += span.finish();
                    for server in &mut self.servers {
                        server.reject();
                    }
                    return false;
                }
            }
        }
        self.timings.round1 += span.finish();

        // Byte accounting, leader-star topology:
        // non-leader i → leader: Round1([m_i]); leader → each non-leader:
        // Round1Combined([Σm]); non-leader → leader: Round2; leader → all:
        // Decisions.
        let r1_size = ServerMsg::Round1 {
            ctx: 0,
            msgs: vec![round1[1]],
        }
        .to_wire_bytes()
        .len() as u64;
        let combined = vec![prio_snip::Round1Msg {
            d: round1.iter().map(|m| m.d).sum(),
            e: round1.iter().map(|m| m.e).sum(),
        }];
        let comb_size = ServerMsg::Round1Combined {
            ctx: 0,
            msgs: combined.clone(),
        }
        .to_wire_bytes()
        .len() as u64;
        let span = Span::start(&self.phases.round2);
        let round2: Vec<_> = (0..s)
            .map(|i| self.servers[i].round2(&states[i], &combined))
            .collect();
        let r2_size = ServerMsg::Round2 {
            ctx: 0,
            msgs: vec![round2[1]],
        }
        .to_wire_bytes()
        .len() as u64;
        let accepted = decide(&round2);
        self.timings.round2 += span.finish();
        let dec_size = ServerMsg::<F>::Decisions {
            ctx: 0,
            bits: pack_decisions(&[accepted]),
        }
        .to_wire_bytes()
        .len() as u64;
        for i in 1..s {
            self.sent_bytes[i] += r1_size + r2_size;
        }
        self.sent_bytes[0] += (comb_size + dec_size) * (s as u64 - 1);

        if accepted {
            for (i, (x, _)) in unpacked.iter().enumerate() {
                self.servers[i].accumulate(x);
            }
        } else {
            for server in &mut self.servers {
                server.reject();
            }
        }
        accepted
    }

    /// Processes a whole batch of submissions through the batched pipeline:
    /// one verification context per `batch_size` chunk, scratch-reusing
    /// round-1 workers (`verify_threads` per server via
    /// [`Cluster::with_verify_threads`]), batched round 2, and a
    /// deterministic submission-order merge of decisions and accumulator
    /// updates.
    ///
    /// Decisions, accumulators, and accept/reject counters are
    /// bit-identical to feeding the same submissions one at a time through
    /// [`Cluster::process`] on a cluster in the same state (the
    /// `batch_determinism` integration test holds both paths to that
    /// contract). Byte accounting differs in framing only: this path counts
    /// the deployment-style batched messages — one `Round1`/`Round2` vector
    /// per non-leader per chunk and one `Round1Combined`/`Decisions` fan-out
    /// from the leader — instead of one message set per submission.
    pub fn process_batch(&mut self, subs: &[ClientSubmission<F>]) -> Vec<bool>
    where
        A: Sync,
    {
        let mut decisions = Vec::with_capacity(subs.len());
        let mut idx = 0;
        while idx < subs.len() {
            self.refresh_context_if_needed();
            let take = (self.batch_size - self.processed_in_batch).min(subs.len() - idx);
            let chunk = &subs[idx..idx + take];
            self.processed_in_batch += take;
            self.process_chunk(chunk, &mut decisions);
            idx += take;
        }
        decisions
    }

    /// One context-sized chunk of [`Cluster::process_batch`].
    fn process_chunk(&mut self, chunk: &[ClientSubmission<F>], decisions: &mut Vec<bool>)
    where
        A: Sync,
    {
        let s = self.servers.len();
        let count = chunk.len();
        self.timings.submissions += count as u64;
        // Take the context out for the duration of the chunk (put back at
        // the end) so the `&mut self` phases below don't force a deep copy
        // of the kernel pair this batching exists to amortize.
        let ctx = self.ctx.take().expect("context refreshed");

        // Unpack every server's share of every submission; a failure at any
        // server rejects that submission (same decision the sequential
        // path's early return produces).
        let span = Span::start(&self.phases.unpack);
        let mut local_ok = vec![true; count];
        let mut unpacked: Vec<Vec<(Vec<F>, prio_snip::SnipProofShare<F>)>> =
            Vec::with_capacity(count);
        for (j, sub) in chunk.iter().enumerate() {
            assert_eq!(sub.blobs.len(), s, "one blob per server");
            let mut per_sub = Vec::with_capacity(s);
            for (i, blob) in sub.blobs.iter().enumerate() {
                match self.servers[i].unpack(blob, sub.prg_label) {
                    Ok(pair) => per_sub.push(pair),
                    Err(_) => {
                        local_ok[j] = false;
                        per_sub.clear();
                        break;
                    }
                }
            }
            unpacked.push(per_sub);
        }
        self.timings.unpack += span.finish();

        // Round 1 at every server, batched across the verify pool.
        let ok_idx: Vec<usize> = (0..count).filter(|&j| local_ok[j]).collect();
        let span = Span::start(&self.phases.round1);
        let r1: Vec<Vec<_>> = (0..s)
            .map(|i| {
                let items: Vec<(&[F], &prio_snip::SnipProofShare<F>)> = ok_idx
                    .iter()
                    .map(|&j| {
                        let (x, proof) = &unpacked[j][i];
                        (x.as_slice(), proof)
                    })
                    .collect();
                self.servers[i].round1_batch(&ctx, &items, self.verify_threads)
            })
            .collect();
        for (k, &j) in ok_idx.iter().enumerate() {
            if r1.iter().any(|per_server| per_server[k].is_err()) {
                local_ok[j] = false;
            }
        }
        self.timings.round1 += span.finish();

        // Combine round-1 broadcasts, run batched round 2, and decide.
        let span = Span::start(&self.phases.round2);
        let mut chunk_decisions = vec![false; count];
        let mut verified_idx = Vec::new();
        let mut combined = Vec::new();
        let mut per_server_states: Vec<Vec<prio_snip::ServerState<F>>> = vec![Vec::new(); s];
        for (k, &j) in ok_idx.iter().enumerate() {
            if !local_ok[j] {
                continue;
            }
            verified_idx.push(j);
            let mut sum = prio_snip::Round1Msg {
                d: F::zero(),
                e: F::zero(),
            };
            for (i, per_server) in r1.iter().enumerate() {
                let (state, msg) = per_server[k].as_ref().expect("checked ok above");
                sum.d += msg.d;
                sum.e += msg.e;
                per_server_states[i].push(state.clone());
            }
            combined.push(sum);
        }
        let r2: Vec<Vec<_>> = (0..s)
            .map(|i| self.servers[i].round2_batch(&per_server_states[i], &combined))
            .collect();
        for (k, &j) in verified_idx.iter().enumerate() {
            let msgs: Vec<_> = r2.iter().map(|per_server| per_server[k]).collect();
            chunk_decisions[j] = decide(&msgs);
        }
        self.timings.round2 += span.finish();

        // Batched-message byte accounting (deployment framing): the
        // deployment sends full-length vectors with zero/poison
        // placeholders for locally failed submissions, and the entries are
        // fixed-size, so size(count) follows from one- and two-entry
        // probes by arithmetic — no count-sized temporaries in the
        // measured path.
        let grow = |one: usize, two: usize| -> u64 {
            one as u64 + (count as u64 - 1) * (two - one) as u64
        };
        let r1_probe = |n: usize| {
            ServerMsg::Round1 {
                ctx: 0,
                msgs: vec![
                    prio_snip::Round1Msg {
                        d: F::zero(),
                        e: F::zero(),
                    };
                    n
                ],
            }
            .to_wire_bytes()
            .len()
        };
        let comb_probe = |n: usize| {
            ServerMsg::Round1Combined {
                ctx: 0,
                msgs: vec![
                    prio_snip::Round1Msg {
                        d: F::zero(),
                        e: F::zero(),
                    };
                    n
                ],
            }
            .to_wire_bytes()
            .len()
        };
        let r2_probe = |n: usize| {
            ServerMsg::Round2 {
                ctx: 0,
                msgs: vec![
                    prio_snip::Round2Msg {
                        sigma: F::one(),
                        out: F::one(),
                    };
                    n
                ],
            }
            .to_wire_bytes()
            .len()
        };
        let r1_size = grow(r1_probe(1), r1_probe(2));
        let comb_size = grow(comb_probe(1), comb_probe(2));
        let r2_size = grow(r2_probe(1), r2_probe(2));
        let dec_size = ServerMsg::<F>::Decisions {
            ctx: 0,
            bits: pack_decisions(&chunk_decisions),
        }
        .to_wire_bytes()
        .len() as u64;
        for i in 1..s {
            self.sent_bytes[i] += r1_size + r2_size;
        }
        self.sent_bytes[0] += (comb_size + dec_size) * (s as u64 - 1);

        // Deterministic merge, in submission order.
        for (j, &accepted) in chunk_decisions.iter().enumerate() {
            if accepted {
                for (i, server) in self.servers.iter_mut().enumerate() {
                    server.accumulate(&unpacked[j][i].0);
                }
            } else {
                for server in &mut self.servers {
                    server.reject();
                }
            }
            decisions.push(accepted);
        }
        self.ctx = Some(ctx);
    }

    /// Publishes and sums the accumulators: `σ = Σ_j A_j` (Figure 1d).
    pub fn aggregate(&self) -> Vec<F> {
        // `&self` here, so the publish cost lands in the histogram only;
        // `timings.publish` stays whatever the server loop put there.
        let span = Span::start(&self.phases.publish);
        let kp = self.servers[0].accumulator().len();
        let mut sigma = vec![F::zero(); kp];
        for server in &self.servers {
            for (acc, &v) in sigma.iter_mut().zip(server.accumulator()) {
                *acc += v;
            }
        }
        span.finish();
        sigma
    }

    /// Decodes the aggregate through the AFE.
    pub fn decode(&self) -> Result<A::Output, prio_afe::AfeError> {
        let sigma = self.aggregate();
        self.servers[0]
            .afe()
            .decode(&sigma, self.servers[0].accepted() as usize)
    }

    /// Number of accepted submissions.
    pub fn accepted(&self) -> u64 {
        self.servers[0].accepted()
    }

    /// Number of rejected submissions.
    pub fn rejected(&self) -> u64 {
        self.servers[0].rejected()
    }

    /// Verification bytes sent per server so far (index 0 = leader).
    pub fn verification_bytes_sent(&self) -> &[u64] {
        &self.sent_bytes
    }

    /// Accumulated per-phase verification timings.
    pub fn timings(&self) -> PhaseTimings {
        self.timings
    }

    /// Resets the per-phase timing accumulators (e.g. after warmup runs).
    pub fn reset_timings(&mut self) {
        self.timings = PhaseTimings::default();
    }

    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientConfig, ShareBlob};
    use prio_afe::freq::FrequencyAfe;
    use prio_afe::sum::SumAfe;
    use prio_field::Field64;
    use rand::SeedableRng;

    #[test]
    fn ctx_rng_is_domain_separated_prg_with_pinned_stream() {
        // The cluster's context-seed stream is ChaCha20 under a pinned
        // domain-separation label. Pin the first draw so any silent change
        // of generator, seed, or label breaks this test.
        let mut rng = PrgRng::from_u64_seed(0x5052_494f, CLUSTER_CTX_SEED_LABEL);
        let first: u64 = rng.random();
        assert_eq!(first, CLUSTER_CTX_FIRST_DRAW);
        // A different label (the per-context one) must yield a different
        // stream: domain separation is doing real work.
        let mut other = PrgRng::from_u64_seed(0x5052_494f, 0x5052_494f_2063_7478);
        let other_first: u64 = other.random();
        assert_ne!(first, other_first);
    }

    /// Pinned first `u64` of the cluster context-seed stream.
    const CLUSTER_CTX_FIRST_DRAW: u64 = 0xa902_6c5c_2ba5_3311;

    #[test]
    fn end_to_end_sum() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut cluster: Cluster<Field64, _> =
            Cluster::new(SumAfe::new(4), 3, VerifyMode::FixedPoint);
        let mut client = Client::new(SumAfe::new(4), ClientConfig::new(3));
        let values = [3u64, 14, 0, 7, 15, 9];
        for v in values {
            let sub = client.submit(&v, &mut rng).unwrap();
            assert!(cluster.process(&sub));
        }
        assert_eq!(cluster.accepted(), 6);
        let total = cluster.decode().unwrap();
        assert_eq!(total, values.iter().map(|&v| v as u128).sum::<u128>());
    }

    #[test]
    fn end_to_end_histogram() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let afe = FrequencyAfe::new(4);
        let mut cluster: Cluster<Field64, _> = Cluster::new(afe.clone(), 2, VerifyMode::FixedPoint);
        let mut client = Client::new(afe, ClientConfig::new(2));
        for v in [0usize, 1, 1, 3, 1] {
            let sub = client.submit(&v, &mut rng).unwrap();
            assert!(cluster.process(&sub));
        }
        assert_eq!(cluster.decode().unwrap(), vec![1, 3, 0, 1]);
    }

    #[test]
    fn cheating_submission_is_rejected_and_not_aggregated() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut cluster: Cluster<Field64, _> =
            Cluster::new(SumAfe::new(4), 2, VerifyMode::FixedPoint);
        let mut client = Client::new(SumAfe::new(4), ClientConfig::new(2));
        // Two honest submissions.
        for v in [5u64, 6] {
            let sub = client.submit(&v, &mut rng).unwrap();
            assert!(cluster.process(&sub));
        }
        // A cheater tampers with its explicit share to claim a huge value
        // (the Section-1 ballot-stuffing attack).
        let mut sub = client.submit(&1, &mut rng).unwrap();
        if let ShareBlob::Explicit(v) = &mut sub.blobs[1] {
            v[0] += Field64::from_u64(1000);
        } else {
            panic!("last blob should be explicit");
        }
        assert!(!cluster.process(&sub));
        assert_eq!(cluster.accepted(), 2);
        assert_eq!(cluster.rejected(), 1);
        // The aggregate only contains the honest values.
        assert_eq!(cluster.decode().unwrap(), 11);
    }

    #[test]
    fn malformed_blob_rejected_locally() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut cluster: Cluster<Field64, _> =
            Cluster::new(SumAfe::new(4), 2, VerifyMode::FixedPoint);
        let mut client = Client::new(SumAfe::new(4), ClientConfig::new(2));
        let mut sub = client.submit(&1, &mut rng).unwrap();
        sub.blobs[1] = ShareBlob::Explicit(vec![Field64::zero(); 2]);
        assert!(!cluster.process(&sub));
        assert_eq!(cluster.rejected(), 1);
    }

    #[test]
    fn non_leader_bytes_are_constant_in_submission_size() {
        // The heart of Figure 6: verification traffic is independent of L.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut small: Cluster<Field64, _> =
            Cluster::new(SumAfe::new(2), 3, VerifyMode::FixedPoint);
        let mut big: Cluster<Field64, _> =
            Cluster::new(SumAfe::new(60), 3, VerifyMode::FixedPoint);
        let mut c_small = Client::new(SumAfe::new(2), ClientConfig::new(3));
        let mut c_big = Client::new(SumAfe::new(60), ClientConfig::new(3));
        small.process(&c_small.submit(&1, &mut rng).unwrap());
        big.process(&c_big.submit(&(1 << 50), &mut rng).unwrap());
        assert_eq!(
            small.verification_bytes_sent()[1],
            big.verification_bytes_sent()[1]
        );
    }

    #[test]
    fn batched_byte_accounting_matches_full_serialization() {
        // process_chunk derives message sizes from 1/2-entry probes plus
        // arithmetic; that is exact because the wire format length prefix
        // is fixed-width. Pin it against directly serialized full vectors.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 5usize;
        let mut cluster: Cluster<Field64, _> = Cluster::with_options(
            SumAfe::new(4),
            3,
            VerifyMode::FixedPoint,
            HForm::PointValue,
            1024,
        );
        let mut client = Client::new(SumAfe::new(4), ClientConfig::new(3));
        let subs: Vec<_> = (0..n as u64)
            .map(|v| client.submit(&v, &mut rng).unwrap())
            .collect();
        assert!(cluster.process_batch(&subs).iter().all(|&d| d));
        let msg = prio_snip::Round1Msg {
            d: Field64::zero(),
            e: Field64::zero(),
        };
        let r2 = prio_snip::Round2Msg {
            sigma: Field64::one(),
            out: Field64::one(),
        };
        let expect_non_leader = ServerMsg::Round1 {
            ctx: 0,
            msgs: vec![msg; n],
        }
        .to_wire_bytes()
        .len()
            + ServerMsg::Round2 {
                ctx: 0,
                msgs: vec![r2; n],
            }
            .to_wire_bytes()
            .len();
        assert_eq!(cluster.verification_bytes_sent()[1], expect_non_leader as u64);
        assert_eq!(cluster.verification_bytes_sent()[2], expect_non_leader as u64);
        let expect_leader = 2
            * (ServerMsg::Round1Combined {
                ctx: 0,
                msgs: vec![msg; n],
            }
            .to_wire_bytes()
            .len()
                + ServerMsg::<Field64>::Decisions {
                    ctx: 0,
                    bits: pack_decisions(&vec![true; n]),
                }
                .to_wire_bytes()
                .len());
        assert_eq!(cluster.verification_bytes_sent()[0], expect_leader as u64);
    }

    #[test]
    fn interpolate_mode_agrees() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut cluster: Cluster<Field64, _> =
            Cluster::new(SumAfe::new(8), 2, VerifyMode::Interpolate);
        let mut client = Client::new(SumAfe::new(8), ClientConfig::new(2));
        for v in [100u64, 200] {
            assert!(cluster.process(&client.submit(&v, &mut rng).unwrap()));
        }
        assert_eq!(cluster.decode().unwrap(), 300);
    }
}
