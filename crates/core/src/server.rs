//! A single Prio aggregation server.

use crate::client::{ShareBlob, ShareLayout};
use prio_afe::Afe;
use prio_circuit::Circuit;
use prio_crypto::prg::PrgRng;
use prio_field::FieldElement;
use prio_snip::{
    verifier::{verify_round1, verify_round1_batch, verify_round2, verify_round2_batch},
    HForm, Round1Msg, Round2Msg, ServerState, SnipError, SnipProofShare, VerifierContext,
    VerifyMode,
};

/// Domain-separation label for expanding a batch's `ctx_seed` into shared
/// verification randomness ("PRIO ctx" in ASCII). Changing this value (or
/// the expansion route) changes every derived context, so it is pinned by
/// a vector test below.
const CTX_RANDOMNESS_LABEL: u64 = 0x5052_494f_2063_7478;

/// Per-server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// This server's index (`0` is the leader).
    pub index: usize,
    /// Total number of servers `s`.
    pub num_servers: usize,
    /// Polynomial-evaluation strategy (Appendix-I fixed-point by default).
    pub verify_mode: VerifyMode,
    /// `h` transmission format the clients use.
    pub h_form: HForm,
}

/// One Prio aggregation server: unpacks submission shares, participates in
/// SNIP verification, and maintains the running accumulator (Figure 1,
/// steps b–d).
pub struct Server<F: FieldElement, A: Afe<F>> {
    afe: A,
    circuit: Circuit<F>,
    layout: ShareLayout,
    cfg: ServerConfig,
    accumulator: Vec<F>,
    accepted: u64,
    rejected: u64,
}

impl<F: FieldElement, A: Afe<F>> Server<F, A> {
    /// Creates a server for the given AFE.
    pub fn new(afe: A, cfg: ServerConfig) -> Self {
        let circuit = afe.valid_circuit();
        let layout = ShareLayout::for_gates(afe.encoded_len(), circuit.num_mul_gates(), cfg.h_form);
        let accumulator = vec![F::zero(); afe.trunc_len()];
        Server {
            afe,
            circuit,
            layout,
            cfg,
            accumulator,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Whether this server coordinates verification.
    pub fn is_leader(&self) -> bool {
        self.cfg.index == 0
    }

    /// The shared layout.
    pub fn layout(&self) -> ShareLayout {
        self.layout
    }

    /// The `Valid` circuit.
    pub fn circuit(&self) -> &Circuit<F> {
        &self.circuit
    }

    /// The AFE.
    pub fn afe(&self) -> &A {
        &self.afe
    }

    /// Unpacks this server's share blob into `(x_share, proof_share)`.
    pub fn unpack(
        &self,
        blob: &ShareBlob<F>,
        prg_label: u64,
    ) -> Result<(Vec<F>, SnipProofShare<F>), SnipError> {
        match blob {
            ShareBlob::Seed(seed) => Ok(self.layout.expand(seed, prg_label)),
            ShareBlob::Explicit(flat) => self
                .layout
                .unflatten(flat)
                .ok_or(SnipError::Malformed("flattened share length")),
        }
    }

    /// Derives the batch verification context from a shared seed. All
    /// servers derive the identical `(r, ρ)` — this models the leader
    /// broadcasting fresh verification randomness once per batch
    /// (Appendix I amortizes the kernel precomputation over the batch).
    ///
    /// The derivation runs through `prio_crypto`'s ChaCha20 [`PrgRng`]
    /// under a fixed domain-separation label — *never* the test-grade
    /// `rand` shim — so every deployment flavour (single-process cluster,
    /// threaded deployment, multi-process nodes) expands `ctx_seed` into
    /// bit-identical verification randomness with a cryptographic
    /// expander.
    ///
    /// Fails only on an invalid server configuration (propagated from
    /// [`VerifierContext::random`]); with the `num_servers ≥ 1` every
    /// constructor in this crate enforces, it cannot fail.
    pub fn make_context(&self, ctx_seed: u64) -> Result<VerifierContext<F>, SnipError> {
        let mut rng = PrgRng::from_u64_seed(ctx_seed, CTX_RANDOMNESS_LABEL);
        VerifierContext::random(
            &self.circuit,
            self.cfg.num_servers,
            self.cfg.verify_mode,
            &mut rng,
        )
    }

    /// Runs SNIP verification round 1 for one submission.
    pub fn round1(
        &self,
        ctx: &VerifierContext<F>,
        x_share: &[F],
        proof: &SnipProofShare<F>,
    ) -> Result<(ServerState<F>, Round1Msg<F>), SnipError> {
        verify_round1(ctx, &self.circuit, x_share, proof, self.is_leader())
    }

    /// Batch entry point: runs round 1 for a whole batch under one shared
    /// context, chunking the batch across `threads` std worker threads
    /// (`threads ≤ 1` runs inline). Each worker runs its own
    /// `prio_snip::BatchVerifier` over the borrowed context (per-worker
    /// scratch buffers, no context copies); results are merged back in
    /// submission order, so the output is deterministic and bit-identical
    /// to calling [`Server::round1`] per submission.
    pub fn round1_batch(
        &self,
        ctx: &VerifierContext<F>,
        subs: &[(&[F], &SnipProofShare<F>)],
        threads: usize,
    ) -> Vec<prio_snip::Round1Result<F>>
    where
        A: Sync,
    {
        let threads = threads.max(1).min(subs.len().max(1));
        if threads == 1 {
            return verify_round1_batch(ctx, &self.circuit, subs, self.is_leader());
        }
        let chunk = subs.len().div_ceil(threads);
        let mut out = Vec::with_capacity(subs.len());
        std::thread::scope(|scope| {
            let workers: Vec<_> = subs
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        verify_round1_batch(ctx, &self.circuit, part, self.is_leader())
                    })
                })
                .collect();
            for worker in workers {
                out.extend(worker.join().expect("verify worker panicked"));
            }
        });
        out
    }

    /// Runs SNIP verification round 2 for one submission.
    pub fn round2(&self, state: &ServerState<F>, combined: &[Round1Msg<F>]) -> Round2Msg<F> {
        verify_round2(state, combined)
    }

    /// Batch round 2: `combined[j]` is the summed round-1 broadcast for
    /// submission `j` (the leader-star redistribution form).
    pub fn round2_batch(
        &self,
        states: &[ServerState<F>],
        combined: &[Round1Msg<F>],
    ) -> Vec<Round2Msg<F>> {
        verify_round2_batch(states, combined)
    }

    /// Folds an accepted submission's truncated share into the accumulator
    /// (Figure 1c).
    pub fn accumulate(&mut self, x_share: &[F]) {
        let kp = self.accumulator.len();
        for (acc, &v) in self.accumulator.iter_mut().zip(&x_share[..kp]) {
            *acc += v;
        }
        self.accepted += 1;
    }

    /// Records a rejected submission.
    pub fn reject(&mut self) {
        self.rejected += 1;
    }

    /// The local accumulator (published in Figure 1d).
    pub fn accumulator(&self) -> &[F] {
        &self.accumulator
    }

    /// Number of accepted submissions.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of rejected submissions.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientConfig};
    use prio_afe::sum::SumAfe;
    use prio_field::Field64;
    use prio_snip::decide;
    use rand::SeedableRng;

    fn make_servers(s: usize) -> Vec<Server<Field64, SumAfe>> {
        (0..s)
            .map(|i| {
                Server::new(
                    SumAfe::new(4),
                    ServerConfig {
                        index: i,
                        num_servers: s,
                        verify_mode: VerifyMode::FixedPoint,
                        h_form: HForm::PointValue,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn manual_pipeline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = 3;
        let mut servers = make_servers(s);
        let mut client: Client<Field64, _> =
            Client::new(SumAfe::new(4), ClientConfig::new(s));

        let mut expected_sum = 0u64;
        for value in [3u64, 15, 0, 9] {
            expected_sum += value;
            let sub = client.submit(&value, &mut rng).unwrap();
            let ctx = servers[0].make_context(42).unwrap();
            let unpacked: Vec<_> = (0..s)
                .map(|i| servers[i].unpack(&sub.blobs[i], sub.prg_label).unwrap())
                .collect();
            let r1: Vec<_> = (0..s)
                .map(|i| {
                    servers[i]
                        .round1(&ctx, &unpacked[i].0, &unpacked[i].1)
                        .unwrap()
                })
                .collect();
            let msgs: Vec<_> = r1.iter().map(|(_, m)| *m).collect();
            let r2: Vec<_> = (0..s)
                .map(|i| servers[i].round2(&r1[i].0, &msgs))
                .collect();
            assert!(decide(&r2));
            for (i, (x, _)) in unpacked.iter().enumerate() {
                servers[i].accumulate(x);
            }
        }
        let total: Field64 = servers.iter().map(|sv| sv.accumulator()[0]).sum();
        assert_eq!(total, Field64::from_u64(expected_sum));
        assert!(servers.iter().all(|sv| sv.accepted() == 4));
    }

    #[test]
    fn contexts_agree_across_servers() {
        let servers = make_servers(4);
        let ctx0 = servers[0].make_context(123).unwrap();
        let ctx3 = servers[3].make_context(123).unwrap();
        assert_eq!(ctx0.point(), ctx3.point());
        let other = servers[0].make_context(124).unwrap();
        assert_ne!(ctx0.point(), other.point());
    }

    #[test]
    fn context_derivation_is_prg_backed_and_pinned() {
        // The shared verification randomness must come from the ChaCha20
        // PRG under the fixed label — never the swappable test-grade rand
        // shim. Pinning the evaluation point for one seed catches any
        // accidental re-route (a different expander would move it).
        let servers = make_servers(2);
        let ctx = servers[0].make_context(0x1234_5678).unwrap();
        let mut rng = prio_crypto::prg::PrgRng::from_u64_seed(
            0x1234_5678,
            super::CTX_RANDOMNESS_LABEL,
        );
        let expect = Field64::random(&mut rng);
        assert_eq!(ctx.point(), expect);
        assert_eq!(ctx.point().as_u64(), PINNED_CTX_POINT);
    }

    /// `make_context(0x1234_5678).point()` for the 4-bit sum AFE; see
    /// `context_derivation_is_prg_backed_and_pinned`.
    const PINNED_CTX_POINT: u64 = 15_843_597_981_360_209_118;

    #[test]
    fn unpack_rejects_malformed_explicit() {
        let servers = make_servers(2);
        let blob = ShareBlob::Explicit(vec![Field64::zero(); 3]);
        assert!(servers[0].unpack(&blob, 0).is_err());
    }
}
