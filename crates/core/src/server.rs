//! A single Prio aggregation server.

use crate::client::{ShareBlob, ShareLayout};
use prio_afe::Afe;
use prio_circuit::Circuit;
use prio_field::FieldElement;
use prio_snip::{
    verifier::{verify_round1, verify_round2},
    HForm, Round1Msg, Round2Msg, ServerState, SnipError, SnipProofShare, VerifierContext,
    VerifyMode,
};
use rand::SeedableRng;

/// Per-server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// This server's index (`0` is the leader).
    pub index: usize,
    /// Total number of servers `s`.
    pub num_servers: usize,
    /// Polynomial-evaluation strategy (Appendix-I fixed-point by default).
    pub verify_mode: VerifyMode,
    /// `h` transmission format the clients use.
    pub h_form: HForm,
}

/// One Prio aggregation server: unpacks submission shares, participates in
/// SNIP verification, and maintains the running accumulator (Figure 1,
/// steps b–d).
pub struct Server<F: FieldElement, A: Afe<F>> {
    afe: A,
    circuit: Circuit<F>,
    layout: ShareLayout,
    cfg: ServerConfig,
    accumulator: Vec<F>,
    accepted: u64,
    rejected: u64,
}

impl<F: FieldElement, A: Afe<F>> Server<F, A> {
    /// Creates a server for the given AFE.
    pub fn new(afe: A, cfg: ServerConfig) -> Self {
        let circuit = afe.valid_circuit();
        let layout = ShareLayout::for_gates(afe.encoded_len(), circuit.num_mul_gates(), cfg.h_form);
        let accumulator = vec![F::zero(); afe.trunc_len()];
        Server {
            afe,
            circuit,
            layout,
            cfg,
            accumulator,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Whether this server coordinates verification.
    pub fn is_leader(&self) -> bool {
        self.cfg.index == 0
    }

    /// The shared layout.
    pub fn layout(&self) -> ShareLayout {
        self.layout
    }

    /// The `Valid` circuit.
    pub fn circuit(&self) -> &Circuit<F> {
        &self.circuit
    }

    /// The AFE.
    pub fn afe(&self) -> &A {
        &self.afe
    }

    /// Unpacks this server's share blob into `(x_share, proof_share)`.
    pub fn unpack(
        &self,
        blob: &ShareBlob<F>,
        prg_label: u64,
    ) -> Result<(Vec<F>, SnipProofShare<F>), SnipError> {
        match blob {
            ShareBlob::Seed(seed) => Ok(self.layout.expand(seed, prg_label)),
            ShareBlob::Explicit(flat) => self
                .layout
                .unflatten(flat)
                .ok_or(SnipError::Malformed("flattened share length")),
        }
    }

    /// Derives the batch verification context from a shared seed. All
    /// servers derive the identical `(r, ρ)` — this models the leader
    /// broadcasting fresh verification randomness once per batch
    /// (Appendix I amortizes the kernel precomputation over the batch).
    pub fn make_context(&self, ctx_seed: u64) -> VerifierContext<F> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx_seed);
        VerifierContext::random(
            &self.circuit,
            self.cfg.num_servers,
            self.cfg.verify_mode,
            &mut rng,
        )
    }

    /// Runs SNIP verification round 1 for one submission.
    pub fn round1(
        &self,
        ctx: &VerifierContext<F>,
        x_share: &[F],
        proof: &SnipProofShare<F>,
    ) -> Result<(ServerState<F>, Round1Msg<F>), SnipError> {
        verify_round1(ctx, &self.circuit, x_share, proof, self.is_leader())
    }

    /// Runs SNIP verification round 2 for one submission.
    pub fn round2(&self, state: &ServerState<F>, combined: &[Round1Msg<F>]) -> Round2Msg<F> {
        verify_round2(state, combined)
    }

    /// Folds an accepted submission's truncated share into the accumulator
    /// (Figure 1c).
    pub fn accumulate(&mut self, x_share: &[F]) {
        let kp = self.accumulator.len();
        for (acc, &v) in self.accumulator.iter_mut().zip(&x_share[..kp]) {
            *acc += v;
        }
        self.accepted += 1;
    }

    /// Records a rejected submission.
    pub fn reject(&mut self) {
        self.rejected += 1;
    }

    /// The local accumulator (published in Figure 1d).
    pub fn accumulator(&self) -> &[F] {
        &self.accumulator
    }

    /// Number of accepted submissions.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of rejected submissions.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientConfig};
    use prio_afe::sum::SumAfe;
    use prio_field::Field64;
    use prio_snip::decide;
    use rand::SeedableRng;

    fn make_servers(s: usize) -> Vec<Server<Field64, SumAfe>> {
        (0..s)
            .map(|i| {
                Server::new(
                    SumAfe::new(4),
                    ServerConfig {
                        index: i,
                        num_servers: s,
                        verify_mode: VerifyMode::FixedPoint,
                        h_form: HForm::PointValue,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn manual_pipeline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = 3;
        let mut servers = make_servers(s);
        let mut client: Client<Field64, _> =
            Client::new(SumAfe::new(4), ClientConfig::new(s));

        let mut expected_sum = 0u64;
        for value in [3u64, 15, 0, 9] {
            expected_sum += value;
            let sub = client.submit(&value, &mut rng).unwrap();
            let ctx = servers[0].make_context(42);
            let unpacked: Vec<_> = (0..s)
                .map(|i| servers[i].unpack(&sub.blobs[i], sub.prg_label).unwrap())
                .collect();
            let r1: Vec<_> = (0..s)
                .map(|i| {
                    servers[i]
                        .round1(&ctx, &unpacked[i].0, &unpacked[i].1)
                        .unwrap()
                })
                .collect();
            let msgs: Vec<_> = r1.iter().map(|(_, m)| *m).collect();
            let r2: Vec<_> = (0..s)
                .map(|i| servers[i].round2(&r1[i].0, &msgs))
                .collect();
            assert!(decide(&r2));
            for (i, (x, _)) in unpacked.iter().enumerate() {
                servers[i].accumulate(x);
            }
        }
        let total: Field64 = servers.iter().map(|sv| sv.accumulator()[0]).sum();
        assert_eq!(total, Field64::from_u64(expected_sum));
        assert!(servers.iter().all(|sv| sv.accepted() == 4));
    }

    #[test]
    fn contexts_agree_across_servers() {
        let servers = make_servers(4);
        let ctx0 = servers[0].make_context(123);
        let ctx3 = servers[3].make_context(123);
        assert_eq!(ctx0.point(), ctx3.point());
        let other = servers[0].make_context(124);
        assert_ne!(ctx0.point(), other.point());
    }

    #[test]
    fn unpack_rejects_malformed_explicit() {
        let servers = make_servers(2);
        let blob = ShareBlob::Explicit(vec![Field64::zero(); 3]);
        assert!(servers[0].unpack(&blob, 0).is_err());
    }
}
