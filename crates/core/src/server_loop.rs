//! The transport-agnostic server event loop, shared by every deployment
//! flavour.
//!
//! [`run_server_loop`] is the one implementation of the per-server side of
//! the batched verification protocol: the in-process threaded
//! [`Deployment`](crate::Deployment) runs it on `s` threads over one
//! shared fabric, and the `prio-node` binary of the multi-process
//! `prio_proc` subsystem runs the *same function* over a per-process
//! [`TcpTransport`](prio_net::TcpTransport) whose peers were registered
//! through the control plane. Factoring it here is what keeps the two
//! execution fabrics protocol-identical: there is no second copy to
//! drift.
//!
//! The loop owns nothing: it borrows the [`Server`] (so the caller can
//! read accumulators and counters afterwards) and the [`Endpoint`], and
//! returns a [`ServerLoopReport`] with per-phase timings and the
//! verification-phase byte count (sampled when the publish request
//! arrives — the Figure-6 quantity).

use crate::cluster::PhaseTimings;
use crate::messages::{blob_from_bytes, pack_decisions, unpack_decisions, ServerMsg};
use crate::server::Server;
use prio_afe::Afe;
use prio_field::FieldElement;
use prio_net::wire::{from_traced_bytes, to_traced_bytes, Wire};
use prio_net::{Endpoint, NodeId, RecvTimeoutError, RetryPolicy};
use prio_obs::trace::{SpanKind, TraceRecorder};
use prio_obs::{names, Obs, Span, TraceCtx};
use prio_snip::{decide, Round1Msg};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Event target for everything this module narrates.
const TARGET: &str = "core::server_loop";

/// The loop's metric handles, resolved once per [`run_server_loop`] call so
/// the per-frame paths touch only pre-registered atomics. Also carries the
/// event hub: every stderr line the loop used to print unconditionally now
/// rides the rate limiter here.
pub(crate) struct LoopMetrics {
    pub(crate) drop_unknown_sender: prio_obs::Counter,
    pub(crate) drop_undecodable: prio_obs::Counter,
    pub(crate) drop_stash_overflow: prio_obs::Counter,
    pub(crate) drop_unexpected_kind: prio_obs::Counter,
    pub(crate) accepted: prio_obs::Counter,
    pub(crate) rejected_malformed: prio_obs::Counter,
    pub(crate) rejected_verify: prio_obs::Counter,
    pub(crate) deduped: prio_obs::Counter,
    pub(crate) batches_abandoned: prio_obs::Counter,
    pub(crate) batch_size: prio_obs::Histogram,
    pub(crate) phase_unpack: prio_obs::Histogram,
    pub(crate) phase_round1: prio_obs::Histogram,
    pub(crate) phase_round2: prio_obs::Histogram,
    pub(crate) phase_publish: prio_obs::Histogram,
    pub(crate) stash_depth: prio_obs::Gauge,
    pub(crate) events: prio_obs::Events,
}

impl LoopMetrics {
    pub(crate) fn resolve(obs: &Obs) -> LoopMetrics {
        let reg = obs.registry();
        LoopMetrics {
            drop_unknown_sender: reg
                .counter(names::SERVER_FRAMES_DROPPED, &[("reason", "unknown_sender")]),
            drop_undecodable: reg
                .counter(names::SERVER_FRAMES_DROPPED, &[("reason", "undecodable")]),
            drop_stash_overflow: reg
                .counter(names::SERVER_FRAMES_DROPPED, &[("reason", "stash_overflow")]),
            drop_unexpected_kind: reg
                .counter(names::SERVER_FRAMES_DROPPED, &[("reason", "unexpected_kind")]),
            accepted: reg.counter(names::SERVER_SUBMISSIONS_ACCEPTED, &[]),
            rejected_malformed: reg
                .counter(names::SERVER_SUBMISSIONS_REJECTED, &[("reason", "malformed")]),
            rejected_verify: reg
                .counter(names::SERVER_SUBMISSIONS_REJECTED, &[("reason", "verify")]),
            deduped: reg.counter(names::SERVER_FRAMES_DEDUPED, &[]),
            batches_abandoned: reg.counter(names::SERVER_BATCHES_ABANDONED, &[]),
            batch_size: reg.histogram(names::SERVER_BATCH_SIZE, &[]),
            phase_unpack: reg.histogram(names::SERVER_PHASE_US, &[("phase", "unpack")]),
            phase_round1: reg.histogram(names::SERVER_PHASE_US, &[("phase", "round1")]),
            phase_round2: reg.histogram(names::SERVER_PHASE_US, &[("phase", "round2")]),
            phase_publish: reg.histogram(names::SERVER_PHASE_US, &[("phase", "publish")]),
            stash_depth: reg.gauge(names::SERVER_STASH_DEPTH, &[]),
            events: obs.events().clone(),
        }
    }
}

/// What the loop does with a frame it cannot decode or whose sender is not
/// part of the deployment.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FramePolicy {
    /// Panic. Right for in-process deployments, where every sender is
    /// trusted protocol code and an undecodable message is a bug that
    /// should fail loudly instead of becoming an undiagnosable hang.
    Strict,
    /// Count the drop and emit a rate-limited warn event. Right for a
    /// network-facing `prio-node` process: anyone can connect to its data
    /// socket, and a garbage frame from a stranger must not crash
    /// verification for everyone else — nor flood stderr: every drop lands
    /// in `server_frames_dropped_total{reason=...}`, and only a trickle of
    /// warn events narrates it. The out-of-phase stash is also bounded in
    /// this mode so a frame flood cannot grow node memory without limit.
    ///
    /// Known limitation: the frame header's sender id is *not
    /// authenticated* — a local attacker who forges a known peer's id and
    /// a well-formed message can still disturb a batch (availability, not
    /// privacy: shares remain secret and tampered submissions are still
    /// rejected by the SNIP). Binding sender identity cryptographically
    /// (e.g. `prio_crypto::sealed` channels per link) is tracked in the
    /// ROADMAP.
    Lenient,
}

/// Options for one run of the server loop.
#[derive(Clone, Debug)]
pub struct ServerLoopOptions {
    /// Worker threads for batched round-1 verification (1 = inline).
    pub verify_threads: usize,
    /// Undecodable-frame handling.
    pub frame_policy: FramePolicy,
    /// Where the loop counts and narrates. Defaults to the process-wide
    /// bundle; tests pin [`Obs::new`] with a fresh registry and a capture
    /// sink to assert on exactly what one loop did.
    pub obs: Obs,
    /// Deadline on every mid-batch gather (round 1/2 vectors, the
    /// combined vector, decisions). `None` waits forever — correct on a
    /// perfect fabric, where a missing message means a peer bug that
    /// should hang visibly. Under fault injection (or any real WAN
    /// deployment) a deadline lets the loop *abandon* a wedged batch —
    /// no server accumulates it, so cross-server aggregate consistency
    /// holds on the batches that do complete — instead of stalling the
    /// whole deployment on one lost frame.
    pub batch_deadline: Option<std::time::Duration>,
    /// Retry policy for the loop's data-plane sends. Defaults to
    /// [`RetryPolicy::none`]: on a perfect fabric a failed send means
    /// the deployment is tearing down. Chaos deployments install a real
    /// policy so an injected drop ([`prio_net::SendError::Closed`]) is
    /// retransmitted instead of killing the loop.
    pub retry: RetryPolicy,
    /// Deadline on the *idle* receive between batches. `None` (the
    /// default) waits forever, which is right on a perfect fabric: the
    /// driver's `Shutdown` frame always arrives, so the loop never needs
    /// a timer to exit. Under fault injection that frame can be
    /// permanently dropped, and a server blocked in its idle receive
    /// would wedge the deployment's teardown join — so chaos deployments
    /// set a bound comfortably above the driver's worst inter-batch gap
    /// and treat its expiry as an orderly exit.
    pub idle_deadline: Option<std::time::Duration>,
    /// Span recorder for distributed per-batch tracing. `None` (the
    /// default) records nothing and keeps every data-plane frame
    /// byte-identical to the untraced encoding; with a recorder, the
    /// loop records unpack/round1/round2/publish/gather-wait spans and
    /// stamps outgoing protocol frames with a `TraceCtx` suffix so
    /// peers can parent their waits on the spans that fed them.
    pub trace: Option<Arc<TraceRecorder>>,
}

impl Default for ServerLoopOptions {
    fn default() -> Self {
        ServerLoopOptions {
            verify_threads: 1,
            frame_policy: FramePolicy::Strict,
            obs: Obs::global(),
            batch_deadline: None,
            retry: RetryPolicy::none(),
            idle_deadline: None,
            trace: None,
        }
    }
}

/// What one server-loop run observed, for the caller's report.
#[derive(Copy, Clone, Debug, Default)]
pub struct ServerLoopReport {
    /// Whether the loop exited through an orderly [`ServerMsg::Shutdown`]
    /// (`false` means the fabric closed under it).
    pub clean: bool,
    /// This endpoint's sent-byte counter when the publish request arrived —
    /// the verification-phase traffic, before the accumulator reveal.
    /// Zero if no publish request was seen.
    pub verify_bytes_sent: u64,
    /// Frames this loop discarded (unknown sender, undecodable, stash
    /// overflow, unexpected kind). Counted locally per loop run — the
    /// registry's `server_frames_dropped_total` aggregates across every
    /// loop in the process, which is the wrong denominator for a per-node
    /// report when several servers share one process.
    pub frames_dropped: u64,
    /// Duplicate `ClientBatch` frames the idempotent-ingest seen-set
    /// discarded (a duplicated upload must not double-count).
    pub frames_deduped: u64,
    /// Batches abandoned because a mid-batch gather deadline expired.
    pub batches_abandoned: u64,
    /// Wall-clock spent in each verification phase.
    pub timings: PhaseTimings,
}

/// Ceiling on stashed out-of-phase messages under [`FramePolicy::Lenient`]:
/// an honest deployment stashes at most a handful of messages per batch, so
/// anything past this is an injection flood and gets dropped instead of
/// growing node memory without bound. Strict (in-process) deployments keep
/// the unbounded stash — every sender there is trusted protocol code.
const MAX_LENIENT_STASH: usize = 4096;

/// Ceiling on the idempotent-ingest seen-set: remembers the last this many
/// batch context seeds. A duplicated frame arrives promptly (fault
/// injection or a lower-layer retransmit), so a window thousands of
/// batches deep is far beyond any realistic duplication horizon.
const MAX_SEEN_BATCHES: usize = 4096;

/// How one [`recv_matching`] wait ended.
enum RecvOutcome<F: FieldElement> {
    /// The wanted message arrived (or was stashed earlier), with the
    /// sender it came from and the trace context its frame carried.
    Msg(NodeId, ServerMsg<F>, Option<TraceCtx>),
    /// The fabric closed underneath the loop.
    Closed,
    /// The caller's deadline expired first.
    Deadline,
}

/// Receives the next message matching `want`, stashing any other valid
/// message for a later phase; an optional `deadline` bounds the wait.
///
/// The sim fabric funnels every sender into one queue, so messages arrive
/// in global send order — but over TCP each sender has its own connection
/// and there is no cross-sender ordering: the driver's `PublishRequest` or
/// next `ClientBatch` can overtake the leader's `Decisions`, and a
/// non-leader's `Round1` can overtake the driver's `ClientBatch` at the
/// leader. The stash makes the server loop transport-agnostic: a message
/// for a later phase waits its turn instead of tripping a protocol panic.
///
/// Under [`FramePolicy::Lenient`], frames from senders outside the
/// deployment and frames that fail to decode are counted in
/// `server_frames_dropped_total{reason=...}` (and tallied into `dropped`
/// for the loop's report), narrated through rate-limited warn events, and
/// dropped — the node-process hardening path. A garbage-frame flood moves
/// counters, not stderr.
/// Stash entries carry the sender: gathers are *source-aware*, so a
/// fault-duplicated round vector from one peer can never be misattributed
/// as another peer's contribution.
#[allow(clippy::too_many_arguments)]
fn recv_matching<F: FieldElement>(
    ep: &Endpoint,
    stash: &mut VecDeque<(NodeId, ServerMsg<F>, Option<TraceCtx>)>,
    policy: FramePolicy,
    known: &[NodeId],
    metrics: &LoopMetrics,
    dropped: &mut u64,
    deadline: Option<Instant>,
    want: impl Fn(NodeId, &ServerMsg<F>) -> bool,
) -> RecvOutcome<F> {
    if let Some(pos) = stash.iter().position(|(src, m, _)| want(*src, m)) {
        if let Some((src, msg, ctx)) = stash.remove(pos) {
            metrics.stash_depth.set(stash.len() as i64);
            return RecvOutcome::Msg(src, msg, ctx);
        }
    }
    loop {
        let env = match deadline {
            None => match ep.recv() {
                Ok(env) => env,
                Err(_) => return RecvOutcome::Closed,
            },
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    return RecvOutcome::Deadline;
                }
                match ep.recv_timeout(deadline - now) {
                    Ok(env) => env,
                    Err(RecvTimeoutError::Timeout) => return RecvOutcome::Deadline,
                    Err(RecvTimeoutError::Closed) => return RecvOutcome::Closed,
                }
            }
        };
        if policy == FramePolicy::Lenient && !known.contains(&env.src) {
            metrics.drop_unknown_sender.inc();
            *dropped += 1;
            metrics.events.warn(
                TARGET,
                "frame_dropped_unknown_sender",
                format!(
                    "dropping frame from unknown sender {:?} ({} bytes)",
                    env.src,
                    env.payload.len()
                ),
            );
            continue;
        }
        let (msg, ctx) = match from_traced_bytes::<ServerMsg<F>>(&env.payload) {
            Ok(pair) => pair,
            // An undecodable payload from a deployment member is a protocol
            // violation, not noise: honest peers never produce one, and in
            // an in-process deployment silently dropping it would turn a
            // missing gather message into an undiagnosable hang — fail
            // loudly there. A network-facing node drops it instead (the
            // sender id is trivially forgeable, so even a "known" source
            // may be a stranger) and keeps serving.
            Err(e) => match policy {
                // lint:allow(no-panic, Strict is the in-process mode where every sender is trusted protocol code; a bad frame is a local bug that must fail loudly)
                FramePolicy::Strict => panic!("undecodable message from {:?}: {e}", env.src),
                FramePolicy::Lenient => {
                    metrics.drop_undecodable.inc();
                    *dropped += 1;
                    metrics.events.warn(
                        TARGET,
                        "frame_dropped_undecodable",
                        format!("rejecting undecodable frame from {:?}: {e}", env.src),
                    );
                    continue;
                }
            },
        };
        if want(env.src, &msg) {
            return RecvOutcome::Msg(env.src, msg, ctx);
        }
        if policy == FramePolicy::Lenient && stash.len() >= MAX_LENIENT_STASH {
            metrics.drop_stash_overflow.inc();
            *dropped += 1;
            metrics.events.warn(
                TARGET,
                "frame_dropped_stash_overflow",
                format!(
                    "stash full ({MAX_LENIENT_STASH}); dropping out-of-phase {} message",
                    msg_kind(&msg)
                ),
            );
            continue;
        }
        stash.push_back((env.src, msg, ctx));
        metrics.stash_depth.set(stash.len() as i64);
    }
}

/// Clears every mid-protocol round message left in the stash at a batch
/// boundary: stale vectors from a finished (or abandoned) batch must not
/// be mistaken for the next batch's traffic. Round messages carry no
/// batch identity, so the boundary is the only safe discard point — and
/// it is sufficient, because the driver paces batches on the previous
/// batch's decisions (or its deadline), after which any straggling or
/// fault-duplicated round frame is by definition stale.
fn clear_round_stash<F: FieldElement>(
    stash: &mut VecDeque<(NodeId, ServerMsg<F>, Option<TraceCtx>)>,
    metrics: &LoopMetrics,
) {
    stash.retain(|(_, m, _)| {
        !matches!(
            m,
            ServerMsg::Round1 { .. }
                | ServerMsg::Round1Combined { .. }
                | ServerMsg::Round2 { .. }
                | ServerMsg::Decisions { .. }
        )
    });
    metrics.stash_depth.set(stash.len() as i64);
}

/// [`clear_round_stash`] plus the abandonment accounting, for a batch a
/// gather deadline killed.
fn abandon_batch<F: FieldElement>(
    stash: &mut VecDeque<(NodeId, ServerMsg<F>, Option<TraceCtx>)>,
    metrics: &LoopMetrics,
    report: &mut ServerLoopReport,
) {
    clear_round_stash(stash, metrics);
    metrics.batches_abandoned.inc();
    report.batches_abandoned += 1;
    metrics.events.warn(
        TARGET,
        "batch_abandoned",
        "mid-batch gather deadline expired; abandoning the batch without accumulating".to_string(),
    );
}

/// Short tag for log lines (avoids dumping whole field vectors to stderr).
fn msg_kind<F: FieldElement>(msg: &ServerMsg<F>) -> &'static str {
    match msg {
        ServerMsg::BatchStart { .. } => "BatchStart",
        ServerMsg::Round1 { .. } => "Round1",
        ServerMsg::Round1Combined { .. } => "Round1Combined",
        ServerMsg::Round2 { .. } => "Round2",
        ServerMsg::Decisions { .. } => "Decisions",
        ServerMsg::PublishRequest => "PublishRequest",
        ServerMsg::Accumulator(_) => "Accumulator",
        ServerMsg::ClientBatch { .. } => "ClientBatch",
        ServerMsg::Shutdown => "Shutdown",
    }
}

/// Runs batched round 2 over the submissions that survived round 1,
/// scattering the results back into submission order. Locally failed
/// submissions get a poisoned share (`σ = out = 1`) so the global decision
/// is guaranteed to reject them even if other servers verified fine.
fn batched_round2<F: FieldElement, A: Afe<F>>(
    server: &Server<F, A>,
    states: &[Option<prio_snip::ServerState<F>>],
    combined: &[Round1Msg<F>],
) -> Vec<prio_snip::Round2Msg<F>> {
    // Walk states and combined together: a combined vector shorter than the
    // batch (possible on a forged leader message) simply poisons the tail
    // instead of panicking.
    let mut ok_idx: Vec<usize> = Vec::new();
    let mut sts: Vec<prio_snip::ServerState<F>> = Vec::new();
    let mut combs: Vec<Round1Msg<F>> = Vec::new();
    for (j, st) in states.iter().enumerate() {
        if let (Some(st), Some(comb)) = (st, combined.get(j)) {
            ok_idx.push(j);
            sts.push(st.clone());
            combs.push(*comb);
        }
    }
    let compact = server.round2_batch(&sts, &combs);
    let mut out = vec![
        prio_snip::Round2Msg {
            sigma: F::one(),
            out: F::one(),
        };
        states.len()
    ];
    for (k, &j) in ok_idx.iter().enumerate() {
        out[j] = compact[k];
    }
    out
}

/// The server event loop: drains `ClientBatch`es through the two SNIP
/// broadcast rounds (leader-star topology), accumulates accepted
/// submissions, answers the publish request, and exits on shutdown.
///
/// `ids` is the full server set in index order (`ids[0]` is the leader and
/// must contain `ep.id()`); `driver` is the node the leader reports
/// decisions to and every server publishes to.
pub fn run_server_loop<F: FieldElement, A: Afe<F> + Sync>(
    server: &mut Server<F, A>,
    ep: &Endpoint,
    ids: &[NodeId],
    driver: NodeId,
    opts: ServerLoopOptions,
) -> ServerLoopReport {
    let metrics = LoopMetrics::resolve(&opts.obs);
    let mut report = ServerLoopReport::default();
    let Some(my_index) = ids.iter().position(|&id| id == ep.id()) else {
        metrics.events.error(
            TARGET,
            "own_id_missing",
            "own endpoint id not in the deployment's server set".to_string(),
        );
        return report;
    };
    let leader_id = ids[0];
    let is_leader = my_index == 0;
    let mut stash = VecDeque::new();
    let mut known: Vec<NodeId> = ids.to_vec();
    known.push(driver);
    let policy = opts.frame_policy;
    // Idempotent ingest: remember recent batch context seeds so a
    // duplicated ClientBatch frame (fault injection, driver retransmit, a
    // lower layer replaying) is discarded instead of double-counted. The
    // seed is the batch's identity — the driver derives one fresh seed per
    // batch, so equal seed ⇔ same batch.
    let mut seen_batches: HashSet<u64> = HashSet::new();
    let mut seen_order: VecDeque<u64> = VecDeque::new();
    let retry = &opts.retry;
    // Trace plumbing: `rec` is None on untraced runs, in which case every
    // outgoing frame is byte-identical to the pre-tracing encoding.
    let rec = opts.trace.as_deref();
    let node = my_index as u64;

    loop {
        let (msg, batch_ctx) = match recv_matching(
            ep,
            &mut stash,
            policy,
            &known,
            &metrics,
            &mut report.frames_dropped,
            opts.idle_deadline.map(|d| Instant::now() + d),
            // Phase-entry messages are the driver's alone: a server id (or
            // a forged one) carrying a ClientBatch/PublishRequest/Shutdown
            // must not steer the loop.
            |src, m| {
                src == driver
                    && matches!(
                        m,
                        ServerMsg::ClientBatch { .. }
                            | ServerMsg::PublishRequest
                            | ServerMsg::Shutdown
                    )
            },
        ) {
            RecvOutcome::Msg(_, msg, ctx) => (msg, ctx),
            RecvOutcome::Closed | RecvOutcome::Deadline => return report,
        };
        match msg {
            ServerMsg::ClientBatch {
                ctx_seed,
                labels,
                blobs,
            } => {
                if seen_batches.contains(&ctx_seed) {
                    metrics.deduped.inc();
                    report.frames_deduped += 1;
                    metrics.events.warn(
                        TARGET,
                        "client_batch_deduped",
                        format!("duplicate ClientBatch (ctx_seed {ctx_seed}); already processed"),
                    );
                    continue;
                }
                if seen_batches.insert(ctx_seed) {
                    seen_order.push_back(ctx_seed);
                    if seen_order.len() > MAX_SEEN_BATCHES {
                        if let Some(evicted) = seen_order.pop_front() {
                            seen_batches.remove(&evicted);
                        }
                    }
                }
                let deadline = opts.batch_deadline.map(|d| Instant::now() + d);
                let ctx = match server.make_context(ctx_seed) {
                    Ok(ctx) => ctx,
                    Err(e) => {
                        metrics.events.error(
                            TARGET,
                            "context_derivation_failed",
                            format!("cannot derive verification context: {e:?}"),
                        );
                        return report;
                    }
                };
                let count = blobs.len();
                report.timings.submissions += count as u64;
                metrics.batch_size.observe(count as u64);
                // Span parentage: the driver's ClientBatch frame carries
                // its batch-root span id; our unpack chains off it, and
                // each later phase chains off the previous one. `tctx`
                // stamps outgoing frames only when tracing is on.
                let batch_parent = batch_ctx.map(|c| c.parent).unwrap_or(0);
                let tctx = |parent: u64| rec.map(|_| TraceCtx { trace: ctx_seed, parent });
                // Unpack every submission; parse/unpack failures — and a
                // labels vector shorter than the blobs vector, possible on
                // a forged batch — are flagged locally and voted "reject".
                let span = Span::start(&metrics.phase_unpack);
                let t_unpack = rec.map_or(0, |r| r.now_us());
                let mut unpacked: Vec<Option<(Vec<F>, prio_snip::SnipProofShare<F>)>> =
                    Vec::with_capacity(count);
                let mut local_ok = vec![true; count];
                for (j, blob_bytes) in blobs.iter().enumerate() {
                    let parsed = labels.get(j).and_then(|&label| {
                        blob_from_bytes::<F>(blob_bytes)
                            .ok()
                            .and_then(|blob| server.unpack(&blob, label).ok())
                    });
                    if parsed.is_none() {
                        local_ok[j] = false;
                    }
                    unpacked.push(parsed);
                }
                report.timings.unpack += span.finish();
                let unpack_span = rec.map_or(0, |r| {
                    r.record_span(ctx_seed, batch_parent, node, SpanKind::Unpack, "", t_unpack, r.now_us())
                });

                // Batched round 1 across the verify pool: one shared
                // context, per-worker scratch, results merged in
                // submission order.
                let span = Span::start(&metrics.phase_round1);
                let t_round1 = rec.map_or(0, |r| r.now_us());
                let mut ok_idx: Vec<usize> = Vec::new();
                let mut items: Vec<(&[F], &prio_snip::SnipProofShare<F>)> = Vec::new();
                for (j, parsed) in unpacked.iter().enumerate() {
                    if let Some((x, proof)) = parsed {
                        ok_idx.push(j);
                        items.push((x.as_slice(), proof));
                    }
                }
                let results = server.round1_batch(&ctx, &items, opts.verify_threads);

                let mut xs: Vec<Vec<F>> = vec![Vec::new(); count];
                let mut states: Vec<Option<prio_snip::ServerState<F>>> = vec![None; count];
                let mut round1 = vec![
                    Round1Msg {
                        d: F::zero(),
                        e: F::zero(),
                    };
                    count
                ];
                for (k, result) in results.into_iter().enumerate() {
                    let j = ok_idx[k];
                    match result {
                        Ok((st, msg)) => {
                            states[j] = Some(st);
                            round1[j] = msg;
                        }
                        Err(_) => local_ok[j] = false,
                    }
                }
                for (j, parsed) in unpacked.into_iter().enumerate() {
                    if let Some((x, _)) = parsed {
                        xs[j] = x;
                    }
                }
                report.timings.round1 += span.finish();
                let round1_span = rec.map_or(0, |r| {
                    r.record_span(ctx_seed, unpack_span, node, SpanKind::Round1, "", t_round1, r.now_us())
                });

                // A deadline expiry anywhere in the gathers breaks out
                // with `None`: the batch is abandoned (never accumulated)
                // and the loop keeps serving. Every server abandons
                // symmetrically — the leader never sent `Decisions`, so
                // non-leaders time out too — which is what keeps the
                // accepted-subset aggregates bit-identical across servers.
                let decisions: Option<Vec<bool>> = 'gather: {
                    Some(if is_leader {
                    // Gather round-1 vectors from the others — one per
                    // *distinct* peer, so a fault-duplicated vector waits
                    // in the stash (cleared at the batch boundary) instead
                    // of impersonating a missing peer's contribution.
                    let mut all_r1 = vec![round1.clone()];
                    let mut pending_r1: HashSet<NodeId> = ids[1..].iter().copied().collect();
                    // A gather-wait span's parent is the *earliest* sender
                    // span among the frames that fed it (min over received
                    // ctx parents — deterministic for a deterministic frame
                    // set); with no traced frame it chains off our own
                    // round-1 span.
                    let t_gather1 = rec.map_or(0, |r| r.now_us());
                    let mut gather1_parent: Option<u64> = None;
                    while !pending_r1.is_empty() {
                        let (src, v, fctx) = match recv_matching(
                            ep,
                            &mut stash,
                            policy,
                            &known,
                            &metrics,
                            &mut report.frames_dropped,
                            deadline,
                            |src, m| {
                                pending_r1.contains(&src)
                                    && matches!(m, ServerMsg::Round1 { ctx, .. } if *ctx == ctx_seed)
                            },
                        ) {
                            RecvOutcome::Msg(src, ServerMsg::Round1 { msgs: v, .. }, fctx) => {
                                (src, v, fctx)
                            }
                            RecvOutcome::Deadline => break 'gather None,
                            _ => return report,
                        };
                        pending_r1.remove(&src);
                        if let Some(c) = fctx {
                            gather1_parent =
                                Some(gather1_parent.map_or(c.parent, |g| g.min(c.parent)));
                        }
                        // A round-1 vector of the wrong length is a protocol
                        // violation (or a forgery); abandon the run rather
                        // than index out of bounds below.
                        if v.len() != count {
                            metrics.events.error(
                                TARGET,
                                "round1_length_mismatch",
                                format!(
                                    "round-1 vector of length {} for a batch of {count}",
                                    v.len()
                                ),
                            );
                            return report;
                        }
                        all_r1.push(v);
                    }
                    let gather1_span = rec.map_or(0, |r| {
                        r.record_span(
                            ctx_seed,
                            gather1_parent.unwrap_or(round1_span),
                            node,
                            SpanKind::GatherWait,
                            "round1",
                            t_gather1,
                            r.now_us(),
                        )
                    });
                    // Combine per submission and redistribute.
                    let combined: Vec<Round1Msg<F>> = (0..count)
                        .map(|j| Round1Msg {
                            d: all_r1.iter().map(|v| v[j].d).sum(),
                            e: all_r1.iter().map(|v| v[j].e).sum(),
                        })
                        .collect();
                    let comb_msg = to_traced_bytes(
                        &ServerMsg::Round1Combined {
                            ctx: ctx_seed,
                            msgs: combined.clone(),
                        },
                        tctx(gather1_span),
                    );
                    for &sid in &ids[1..] {
                        if retry
                            .run("round1_combined_send", || ep.send(sid, comb_msg.clone()))
                            .is_err()
                        {
                            return report;
                        }
                    }
                    // Own round 2 (batched) plus gathered round 2s.
                    let span = Span::start(&metrics.phase_round2);
                    let t_round2 = rec.map_or(0, |r| r.now_us());
                    let own_r2 = batched_round2(server, &states, &combined);
                    report.timings.round2 += span.finish();
                    let round2_span = rec.map_or(0, |r| {
                        r.record_span(ctx_seed, round1_span, node, SpanKind::Round2, "", t_round2, r.now_us())
                    });
                    let mut all_r2 = vec![own_r2];
                    let mut pending_r2: HashSet<NodeId> = ids[1..].iter().copied().collect();
                    let t_gather2 = rec.map_or(0, |r| r.now_us());
                    let mut gather2_parent: Option<u64> = None;
                    while !pending_r2.is_empty() {
                        let (src, v, fctx) = match recv_matching(
                            ep,
                            &mut stash,
                            policy,
                            &known,
                            &metrics,
                            &mut report.frames_dropped,
                            deadline,
                            |src, m| {
                                pending_r2.contains(&src)
                                    && matches!(m, ServerMsg::Round2 { ctx, .. } if *ctx == ctx_seed)
                            },
                        ) {
                            RecvOutcome::Msg(src, ServerMsg::Round2 { msgs: v, .. }, fctx) => {
                                (src, v, fctx)
                            }
                            RecvOutcome::Deadline => break 'gather None,
                            _ => return report,
                        };
                        pending_r2.remove(&src);
                        if let Some(c) = fctx {
                            gather2_parent =
                                Some(gather2_parent.map_or(c.parent, |g| g.min(c.parent)));
                        }
                        if v.len() != count {
                            metrics.events.error(
                                TARGET,
                                "round2_length_mismatch",
                                format!(
                                    "round-2 vector of length {} for a batch of {count}",
                                    v.len()
                                ),
                            );
                            return report;
                        }
                        all_r2.push(v);
                    }
                    let gather2_span = rec.map_or(0, |r| {
                        r.record_span(
                            ctx_seed,
                            gather2_parent.unwrap_or(round2_span),
                            node,
                            SpanKind::GatherWait,
                            "round2",
                            t_gather2,
                            r.now_us(),
                        )
                    });
                    let decisions: Vec<bool> = (0..count)
                        .map(|j| {
                            let msgs: Vec<_> = all_r2.iter().map(|v| v[j]).collect();
                            decide(&msgs)
                        })
                        .collect();
                    let dec_msg = to_traced_bytes(
                        &ServerMsg::<F>::Decisions {
                            ctx: ctx_seed,
                            bits: pack_decisions(&decisions),
                        },
                        tctx(gather2_span),
                    );
                    for &sid in &ids[1..] {
                        if retry
                            .run("decisions_send", || ep.send(sid, dec_msg.clone()))
                            .is_err()
                        {
                            return report;
                        }
                    }
                    if retry
                        .run("decisions_send", || ep.send(driver, dec_msg.clone()))
                        .is_err()
                    {
                        return report;
                    }
                    decisions
                } else {
                    let r1_msg = to_traced_bytes(
                        &ServerMsg::Round1 {
                            ctx: ctx_seed,
                            msgs: round1,
                        },
                        tctx(round1_span),
                    );
                    if retry
                        .run("round1_send", || ep.send(leader_id, r1_msg.clone()))
                        .is_err()
                    {
                        return report;
                    }
                    // Non-leader gather-waits chain off the leader's sender
                    // span carried on the frame; a traceless frame falls
                    // back to our own preceding span so the tree stays
                    // connected.
                    let t_wait1 = rec.map_or(0, |r| r.now_us());
                    let (combined, comb_ctx) = match recv_matching(
                        ep,
                        &mut stash,
                        policy,
                        &known,
                        &metrics,
                        &mut report.frames_dropped,
                        deadline,
                        // Only the leader's word counts for the combined
                        // vector (and for decisions below), and only for
                        // *this* batch.
                        |src, m| {
                            src == leader_id
                                && matches!(m, ServerMsg::Round1Combined { ctx, .. } if *ctx == ctx_seed)
                        },
                    ) {
                        RecvOutcome::Msg(_, ServerMsg::Round1Combined { msgs: combined, .. }, fctx) => {
                            (combined, fctx)
                        }
                        RecvOutcome::Deadline => break 'gather None,
                        _ => return report,
                    };
                    let _ = rec.map(|r| {
                        r.record_span(
                            ctx_seed,
                            comb_ctx.map_or(round1_span, |c| c.parent),
                            node,
                            SpanKind::GatherWait,
                            "round1combined",
                            t_wait1,
                            r.now_us(),
                        )
                    });
                    if combined.len() != count {
                        metrics.events.error(
                            TARGET,
                            "round1_combined_length_mismatch",
                            format!(
                                "combined round-1 vector of length {} for a batch of {count}",
                                combined.len()
                            ),
                        );
                        return report;
                    }
                    let span = Span::start(&metrics.phase_round2);
                    let t_round2 = rec.map_or(0, |r| r.now_us());
                    let r2 = batched_round2(server, &states, &combined);
                    report.timings.round2 += span.finish();
                    let round2_span = rec.map_or(0, |r| {
                        r.record_span(ctx_seed, round1_span, node, SpanKind::Round2, "", t_round2, r.now_us())
                    });
                    let r2_msg = to_traced_bytes(
                        &ServerMsg::Round2 {
                            ctx: ctx_seed,
                            msgs: r2,
                        },
                        tctx(round2_span),
                    );
                    if retry
                        .run("round2_send", || ep.send(leader_id, r2_msg.clone()))
                        .is_err()
                    {
                        return report;
                    }
                    let t_wait2 = rec.map_or(0, |r| r.now_us());
                    let (bits, dec_ctx) = match recv_matching(
                        ep,
                        &mut stash,
                        policy,
                        &known,
                        &metrics,
                        &mut report.frames_dropped,
                        deadline,
                        |src, m| {
                            src == leader_id
                                && matches!(m, ServerMsg::Decisions { ctx, .. } if *ctx == ctx_seed)
                        },
                    ) {
                        RecvOutcome::Msg(_, ServerMsg::Decisions { bits, .. }, fctx) => (bits, fctx),
                        RecvOutcome::Deadline => break 'gather None,
                        _ => return report,
                    };
                    let _ = rec.map(|r| {
                        r.record_span(
                            ctx_seed,
                            dec_ctx.map_or(round2_span, |c| c.parent),
                            node,
                            SpanKind::GatherWait,
                            "decisions",
                            t_wait2,
                            r.now_us(),
                        )
                    });
                    unpack_decisions(&bits, count)
                    })
                };
                let Some(decisions) = decisions else {
                    abandon_batch(&mut stash, &metrics, &mut report);
                    continue;
                };
                // The batch is decided: any round message still stashed
                // (a fault-duplicated vector from a peer already counted)
                // belongs to it and must not leak into the next gather.
                clear_round_stash(&mut stash, &metrics);

                for (j, &ok) in decisions.iter().enumerate() {
                    if ok && local_ok[j] {
                        server.accumulate(&xs[j]);
                        metrics.accepted.inc();
                    } else {
                        server.reject();
                        // A submission this server could not even parse is
                        // "malformed"; one that parsed but failed the SNIP
                        // vote is "verify".
                        if local_ok[j] {
                            metrics.rejected_verify.inc();
                        } else {
                            metrics.rejected_malformed.inc();
                        }
                    }
                }
            }
            ServerMsg::PublishRequest => {
                // Everything sent so far is verification-phase traffic; the
                // accumulator reveal below is the publish phase. Sampling
                // here gives every deployment flavour the same Figure-6
                // split without a shared-fabric snapshot.
                report.verify_bytes_sent = ep.bytes_sent();
                let span = Span::start(&metrics.phase_publish);
                let t_publish = rec.map_or(0, |r| r.now_us());
                let acc = server.accumulator().to_vec();
                let acc_msg = ServerMsg::Accumulator(acc).to_wire_bytes();
                let sent = retry.run("publish_send", || ep.send(driver, acc_msg.clone()));
                report.timings.publish += span.finish();
                // Publish is not tied to any one batch; trace 0 groups the
                // reveal phase per node without inventing a batch id.
                let _ = rec.map(|r| {
                    r.record_span(0, 0, node, SpanKind::Publish, "", t_publish, r.now_us())
                });
                if sent.is_err() {
                    return report;
                }
            }
            ServerMsg::Shutdown => {
                report.clean = true;
                return report;
            }
            // recv_matching only returns the three phase-entry messages
            // matched above; anything else here means the match filter and
            // this arm drifted apart. Drop the message and keep serving.
            other => {
                metrics.drop_unexpected_kind.inc();
                report.frames_dropped += 1;
                metrics.events.warn(
                    TARGET,
                    "frame_dropped_unexpected_kind",
                    format!(
                        "unexpected {} message at server {my_index}; dropping",
                        msg_kind(&other)
                    ),
                );
            }
        }
    }
}
