//! Property tests for the server-protocol wire formats: every [`ServerMsg`]
//! variant and [`ShareBlob`] encoding round-trips, and the decoders reject
//! truncated and garbage-suffixed inputs. These are the exact bytes that
//! cross a socket on the TCP transport backend.

use prio_core::client::ShareBlob;
use prio_core::messages::{
    blob_from_bytes, blob_to_bytes, pack_decisions, unpack_decisions, ServerMsg,
};
use prio_crypto::prg::{Seed, SEED_LEN};
use prio_field::{Field64, FieldElement};
use prio_net::wire::Wire;
use prio_snip::{Round1Msg, Round2Msg};
use proptest::prelude::*;

fn felts(raw: &[u64]) -> Vec<Field64> {
    raw.iter().map(|&v| Field64::from_u64(v)).collect()
}

/// Round-trip plus rejection of every strict prefix and of trailing bytes.
fn check_msg(msg: &ServerMsg<Field64>, garbage: &[u8]) {
    let bytes = msg.to_wire_bytes();
    assert_eq!(&ServerMsg::<Field64>::from_wire_bytes(&bytes).unwrap(), msg);
    for cut in 0..bytes.len() {
        assert!(
            ServerMsg::<Field64>::from_wire_bytes(&bytes[..cut]).is_err(),
            "{msg:?} decoded from a {cut}-byte prefix"
        );
    }
    let mut extended = bytes;
    extended.extend_from_slice(garbage);
    assert!(
        ServerMsg::<Field64>::from_wire_bytes(&extended).is_err(),
        "{msg:?} accepted a garbage suffix"
    );
}

proptest! {
    #[test]
    fn batch_start_roundtrips(ctx_seed in any::<u64>(), count in any::<u64>(), garbage in prop::collection::vec(any::<u8>(), 1..9)) {
        check_msg(&ServerMsg::BatchStart { ctx_seed, count }, &garbage);
    }

    #[test]
    fn round1_msgs_roundtrip(ctx in any::<u64>(), raw in prop::collection::vec(any::<u64>(), 0..24), garbage in prop::collection::vec(any::<u8>(), 1..9)) {
        let msgs: Vec<Round1Msg<Field64>> = raw
            .chunks(2)
            .map(|c| Round1Msg {
                d: Field64::from_u64(c[0]),
                e: Field64::from_u64(*c.last().unwrap()),
            })
            .collect();
        check_msg(&ServerMsg::Round1 { ctx, msgs: msgs.clone() }, &garbage);
        check_msg(&ServerMsg::Round1Combined { ctx, msgs }, &garbage);
    }

    #[test]
    fn round2_msgs_roundtrip(ctx in any::<u64>(), raw in prop::collection::vec(any::<u64>(), 0..24), garbage in prop::collection::vec(any::<u8>(), 1..9)) {
        let msgs: Vec<Round2Msg<Field64>> = raw
            .chunks(2)
            .map(|c| Round2Msg {
                sigma: Field64::from_u64(c[0]),
                out: Field64::from_u64(*c.last().unwrap()),
            })
            .collect();
        check_msg(&ServerMsg::Round2 { ctx, msgs }, &garbage);
    }

    #[test]
    fn decisions_roundtrip(ctx in any::<u64>(), bits in prop::collection::vec(any::<u8>(), 0..32), garbage in prop::collection::vec(any::<u8>(), 1..9)) {
        check_msg(&ServerMsg::Decisions { ctx, bits }, &garbage);
    }

    #[test]
    fn accumulator_roundtrips(raw in prop::collection::vec(any::<u64>(), 0..32), garbage in prop::collection::vec(any::<u8>(), 1..9)) {
        check_msg(&ServerMsg::Accumulator(felts(&raw)), &garbage);
    }

    #[test]
    fn control_msgs_roundtrip(garbage in prop::collection::vec(any::<u8>(), 1..9)) {
        check_msg(&ServerMsg::PublishRequest, &garbage);
        check_msg(&ServerMsg::Shutdown, &garbage);
    }

    #[test]
    fn client_batch_roundtrips(
        ctx_seed in any::<u64>(),
        labels in prop::collection::vec(any::<u64>(), 0..8),
        blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 0..8),
        garbage in prop::collection::vec(any::<u8>(), 1..9),
    ) {
        check_msg(
            &ServerMsg::ClientBatch { ctx_seed, labels, blobs },
            &garbage,
        );
    }

    #[test]
    fn unknown_tags_rejected(tag in 10u8..255, body in prop::collection::vec(any::<u8>(), 0..16)) {
        // Tags 1..=9 are assigned; everything above must fail cleanly.
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&body);
        prop_assert!(ServerMsg::<Field64>::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn share_blobs_roundtrip(seed in any::<[u8; SEED_LEN]>(), raw in prop::collection::vec(any::<u64>(), 0..24)) {
        let blobs: [ShareBlob<Field64>; 2] =
            [ShareBlob::Seed(Seed(seed)), ShareBlob::Explicit(felts(&raw))];
        for blob in blobs {
            let bytes = blob_to_bytes(&blob);
            prop_assert_eq!(blob_from_bytes::<Field64>(&bytes).unwrap(), blob);
            // Truncations must never decode.
            for cut in 0..bytes.len() {
                prop_assert!(blob_from_bytes::<Field64>(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn decisions_pack_unpack_roundtrip(ds in prop::collection::vec(any::<bool>(), 0..70)) {
        let packed = pack_decisions(&ds);
        prop_assert_eq!(packed.len(), ds.len().div_ceil(8));
        prop_assert_eq!(unpack_decisions(&packed, ds.len()), ds);
    }
}
