//! Determinism contract of the batched verification pipeline: the batch
//! entry points must produce **bit-identical** accept/reject decisions and
//! accumulators to the per-submission path, with and without the parallel
//! verify pool — including when tampered and malformed submissions sit in
//! the middle of a batch.

use prio_afe::sum::SumAfe;
use prio_core::{
    Client, ClientConfig, Cluster, Deployment, DeploymentConfig, ShareBlob,
};
use prio_field::{Field64, FieldElement};
use prio_snip::{HForm, VerifyMode};
use rand::SeedableRng;

const BITS: u32 = 8;

/// A mixed workload: honest submissions with a ballot-stuffing tamper, a
/// corrupted SNIP `h` share, and a structurally malformed blob in the
/// middle. Deterministic for a given seed.
fn workload(s: usize, n: usize, seed: u64) -> Vec<prio_core::ClientSubmission<Field64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut client: Client<Field64, _> = Client::new(SumAfe::new(BITS), ClientConfig::new(s));
    let mut subs: Vec<_> = (0..n as u64)
        .map(|v| client.submit(&(v % 200), &mut rng).expect("honest input"))
        .collect();
    // Tamper share values (the Section-1 ballot-stuffing attack).
    if let ShareBlob::Explicit(v) = &mut subs[n / 3].blobs[s - 1] {
        v[0] += Field64::from_u64(999);
    } else {
        panic!("expected explicit blob");
    }
    // Corrupt a SNIP proof component in another submission.
    if let ShareBlob::Explicit(v) = &mut subs[n / 2].blobs[s - 1] {
        let last = v.len() - 1;
        v[last] += Field64::from_u64(1);
    }
    // A structurally malformed blob.
    subs[2 * n / 3].blobs[s - 1] = ShareBlob::Explicit(vec![Field64::zero(); 3]);
    subs
}

fn make_cluster(s: usize, ctx_batch: usize, threads: usize) -> Cluster<Field64, SumAfe> {
    Cluster::with_options(
        SumAfe::new(BITS),
        s,
        VerifyMode::FixedPoint,
        HForm::PointValue,
        ctx_batch,
    )
    .with_verify_threads(threads)
}

/// Runs the same workload through `process` (sequential) and
/// `process_batch`, asserting identical decisions, counters, and
/// accumulators.
fn assert_cluster_paths_agree(s: usize, n: usize, ctx_batch: usize, threads: usize, seed: u64) {
    let subs = workload(s, n, seed);

    let mut sequential = make_cluster(s, ctx_batch, 1);
    let seq_decisions: Vec<bool> = subs.iter().map(|sub| sequential.process(sub)).collect();

    let mut batched = make_cluster(s, ctx_batch, threads);
    let batch_decisions = batched.process_batch(&subs);

    assert_eq!(batch_decisions, seq_decisions, "decisions diverge");
    assert_eq!(batched.accepted(), sequential.accepted());
    assert_eq!(batched.rejected(), sequential.rejected());
    assert_eq!(batched.aggregate(), sequential.aggregate(), "accumulators diverge");
    assert_eq!(
        batched.decode().unwrap(),
        sequential.decode().unwrap(),
        "decoded aggregate diverges"
    );

    // The workload's tampered/malformed submissions must actually have been
    // rejected inside the batch, honest neighbors accepted.
    assert!(!batch_decisions[n / 3], "ballot-stuffing tamper escaped");
    assert!(!batch_decisions[n / 2], "corrupted SNIP escaped");
    assert!(!batch_decisions[2 * n / 3], "malformed blob escaped");
    assert_eq!(
        batch_decisions.iter().filter(|&&d| d).count(),
        n - 3,
        "honest submissions must all be accepted"
    );
}

#[test]
fn cluster_batch_is_bit_identical_to_sequential() {
    // ctx_batch = 7 forces several context refreshes *inside* one
    // process_batch call, exercising the chunking boundary logic.
    assert_cluster_paths_agree(2, 24, 7, 1, 1);
}

#[test]
fn cluster_batch_matches_with_batch_sized_context() {
    assert_cluster_paths_agree(3, 24, 1024, 1, 2);
}

#[test]
fn cluster_verify_pool_does_not_change_results() {
    // 3 worker threads per server; decisions and accumulators must be
    // identical to the single-threaded run.
    assert_cluster_paths_agree(2, 24, 16, 3, 3);
}

#[test]
fn cluster_batch_of_one_matches_process() {
    assert_cluster_paths_agree(2, 12, 1, 1, 4);
}

#[test]
fn deployment_verify_pool_matches_inline() {
    let s = 3;
    let subs = workload(s, 18, 5);
    let mut reports = Vec::new();
    let mut all_decisions = Vec::new();
    for threads in [1usize, 3] {
        let cfg = DeploymentConfig::new(s).with_verify_threads(threads);
        let mut deployment: Deployment<Field64> = Deployment::start(SumAfe::new(BITS), cfg);
        // Two batches so the second context seed is exercised too.
        let mut decisions = deployment.run_batch(&subs[..9]);
        decisions.extend(deployment.run_batch(&subs[9..]));
        reports.push(deployment.finish());
        all_decisions.push(decisions);
    }
    assert_eq!(all_decisions[0], all_decisions[1], "thread count changed decisions");
    assert_eq!(reports[0].accepted, reports[1].accepted);
    assert_eq!(reports[0].rejected, reports[1].rejected);
    assert_eq!(reports[0].sigma, reports[1].sigma, "thread count changed the aggregate");
    assert_eq!(reports[0].rejected, 3, "all three bad submissions rejected");
}

#[test]
fn deployment_pool_larger_than_batch_is_safe() {
    // More worker threads than submissions: chunking must not panic or
    // drop/duplicate submissions.
    let s = 2;
    let subs = workload(s, 4, 6);
    let cfg = DeploymentConfig::new(s).with_verify_threads(8);
    let mut deployment: Deployment<Field64> = Deployment::start(SumAfe::new(BITS), cfg);
    let decisions = deployment.run_batch(&subs);
    assert_eq!(decisions.len(), 4);
    let report = deployment.finish();
    assert_eq!(report.accepted + report.rejected, 4);
}
