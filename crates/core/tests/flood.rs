//! Garbage-flood regression test: a network-facing (Lenient) server loop
//! hit with 10 000 junk frames must account for every one of them in
//! `server_frames_dropped_total{reason=...}` while emitting only a bounded
//! trickle of rate-limited warn events — the stderr-flood fix.

use prio_afe::sum::SumAfe;
use prio_core::messages::ServerMsg;
use prio_core::{run_server_loop, FramePolicy, Server, ServerConfig, ServerLoopOptions};
use prio_field::Field64;
use prio_net::wire::Wire;
use prio_net::SimNetwork;
use prio_obs::{names, CaptureSink, Events, Level, Obs, Registry};
use std::sync::Arc;

const FLOOD: u64 = 10_000;
const FROM_STRANGER: u64 = 6_000;
const FROM_FORGER: u64 = FLOOD - FROM_STRANGER;

#[test]
fn garbage_flood_is_counted_not_printed() {
    // A private Obs bundle: fresh registry (exact counts, no bleed from
    // other tests in this process) and a capture sink (assert on events
    // instead of eyeballing stderr).
    let registry = Arc::new(Registry::new());
    let sink = Arc::new(CaptureSink::new());
    let events = Events::new(sink.clone(), Level::Debug);
    let obs = Obs::new(registry.clone(), events);

    let net = SimNetwork::new();
    let server_ep = net.endpoint();
    let peer_ep = net.endpoint();
    let driver_ep = net.endpoint();
    let stranger_ep = net.endpoint();
    let server_id = server_ep.id();
    let ids = vec![server_id, peer_ep.id()];
    let driver_id = driver_ep.id();

    let handle = std::thread::spawn(move || {
        let mut server = Server::<Field64, _>::new(
            SumAfe::new(8),
            ServerConfig {
                index: 0,
                num_servers: 2,
                verify_mode: prio_snip::VerifyMode::FixedPoint,
                h_form: prio_snip::HForm::PointValue,
            },
        );
        let opts = ServerLoopOptions {
            verify_threads: 1,
            frame_policy: FramePolicy::Lenient,
            obs,
            ..ServerLoopOptions::default()
        };
        run_server_loop(&mut server, &server_ep, &ids, driver_id, opts)
    });

    // The flood: well-formed frames from a sender outside the deployment
    // (dropped as unknown_sender) and undecodable junk from a "known"
    // sender id (dropped as undecodable). The sim fabric is one global
    // FIFO, so everything lands before the shutdown below.
    let junk = ServerMsg::<Field64>::Shutdown.to_wire_bytes();
    for _ in 0..FROM_STRANGER - 1 {
        stranger_ep.send(server_id, junk.clone()).unwrap();
    }
    // A suppressed tally only becomes visible on the *next emitted* event
    // of the same name, and emission needs a refilled token (1/s). Hold
    // the last stranger frame back past one refill period so the flood's
    // suppression count surfaces deterministically.
    std::thread::sleep(std::time::Duration::from_millis(1200));
    stranger_ep.send(server_id, junk.clone()).unwrap();
    for i in 0..FROM_FORGER {
        driver_ep.send(server_id, vec![0xFF, (i & 0xFF) as u8, 0xEE]).unwrap();
    }
    driver_ep
        .send(server_id, ServerMsg::<Field64>::Shutdown.to_wire_bytes())
        .unwrap();

    let report = handle.join().expect("server loop panicked");
    assert!(report.clean, "loop must exit through the orderly shutdown");

    // Exact accounting: every flood frame is in a drop counter, split by
    // reason, and the loop's local tally agrees.
    assert_eq!(report.frames_dropped, FLOOD);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter(names::SERVER_FRAMES_DROPPED, &[("reason", "unknown_sender")]),
        Some(FROM_STRANGER)
    );
    assert_eq!(
        snap.counter(names::SERVER_FRAMES_DROPPED, &[("reason", "undecodable")]),
        Some(FROM_FORGER)
    );
    assert_eq!(snap.counter_sum(names::SERVER_FRAMES_DROPPED), FLOOD);

    // Bounded narration: the old code printed one stderr line per frame
    // (10 000 lines); the rate limiter must keep this to a trickle. The
    // default budget is a burst of 5 per event name plus 1/s refill, and
    // the flood takes well under a minute, so even with refill slack the
    // two event names together stay far below 100 — and nowhere near the
    // 10 000 a per-frame print would produce.
    let captured = sink.events();
    assert!(
        captured.len() < 100,
        "expected a bounded trickle of warn events, got {}",
        captured.len()
    );
    assert!(captured
        .iter()
        .all(|e| e.name.starts_with("frame_dropped_")));
    // Suppression is visible: at least one emitted event carries the
    // count of the flood frames it stands in for.
    assert!(
        captured.iter().any(|e| e.suppressed > 0),
        "a 10k flood must trip the rate limiter"
    );
}
