//! Property tests for the NTT across every Prio field.
//!
//! Two laws, checked for all four field types (which exercises both the
//! lazy-reduction butterflies of `Field64`/`Field32` and the fully-reduced
//! default path of `Field128`/`Field256`):
//!
//! * **Round trip** — `inverse ∘ forward` is the identity on coefficient
//!   vectors of every power-of-two size the test sweeps.
//! * **Convolution** — pointwise multiplication in the evaluation domain
//!   equals schoolbook polynomial multiplication in the coefficient domain,
//!   the property the SNIP prover's `h = f·g` construction relies on.

use prio_field::ntt::NttPlan;
use prio_field::{Field128, Field256, Field32, Field64, FieldElement};
use proptest::prelude::*;
use rand::SeedableRng;

fn rand_vec<F: FieldElement>(n: usize, rng: &mut rand::rngs::StdRng) -> Vec<F> {
    (0..n).map(|_| F::random(rng)).collect()
}

/// `inverse(forward(x)) == x` for a random vector of size `n = 2^log_n`.
fn check_roundtrip<F: FieldElement>(log_n: u32, seed: u64) {
    let n = 1usize << log_n;
    let plan = NttPlan::<F>::get(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let coeffs = rand_vec::<F>(n, &mut rng);
    let mut buf = coeffs.clone();
    plan.forward(&mut buf);
    plan.inverse(&mut buf);
    assert_eq!(buf, coeffs, "{} size {n}", F::NAME);
}

/// NTT-based convolution equals schoolbook multiplication: forward both
/// factors, multiply pointwise, inverse, compare against the O(n²) product.
fn check_pointwise_mul<F: FieldElement>(len_a: usize, len_b: usize, seed: u64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let a = rand_vec::<F>(len_a, &mut rng);
    let b = rand_vec::<F>(len_b, &mut rng);
    let out_len = len_a + len_b - 1;
    let n = out_len.next_power_of_two();
    let plan = NttPlan::<F>::get(n);

    let mut fa = vec![F::zero(); n];
    fa[..len_a].copy_from_slice(&a);
    let mut fb = vec![F::zero(); n];
    fb[..len_b].copy_from_slice(&b);
    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.inverse(&mut fa);

    let mut schoolbook = vec![F::zero(); out_len];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            schoolbook[i + j] += x * y;
        }
    }
    assert_eq!(&fa[..out_len], &schoolbook[..], "{} {len_a}x{len_b}", F::NAME);
    assert!(
        fa[out_len..].iter().all(|&v| v == F::zero()),
        "{}: high coefficients must vanish",
        F::NAME
    );
}

proptest! {
    // Sizes are capped per field so the 256-bit schoolbook reference stays
    // fast; the sweep still crosses several butterfly levels everywhere.
    #[test]
    fn roundtrip_field32(log_n in 0u32..8, seed in any::<u64>()) {
        check_roundtrip::<Field32>(log_n, seed);
    }

    #[test]
    fn roundtrip_field64(log_n in 0u32..10, seed in any::<u64>()) {
        check_roundtrip::<Field64>(log_n, seed);
    }

    #[test]
    fn roundtrip_field128(log_n in 0u32..8, seed in any::<u64>()) {
        check_roundtrip::<Field128>(log_n, seed);
    }

    #[test]
    fn roundtrip_field256(log_n in 0u32..6, seed in any::<u64>()) {
        check_roundtrip::<Field256>(log_n, seed);
    }

    #[test]
    fn pointwise_mul_field32(la in 1usize..24, lb in 1usize..24, seed in any::<u64>()) {
        check_pointwise_mul::<Field32>(la, lb, seed);
    }

    #[test]
    fn pointwise_mul_field64(la in 1usize..32, lb in 1usize..32, seed in any::<u64>()) {
        check_pointwise_mul::<Field64>(la, lb, seed);
    }

    #[test]
    fn pointwise_mul_field128(la in 1usize..16, lb in 1usize..16, seed in any::<u64>()) {
        check_pointwise_mul::<Field128>(la, lb, seed);
    }

    #[test]
    fn pointwise_mul_field256(la in 1usize..8, lb in 1usize..8, seed in any::<u64>()) {
        check_pointwise_mul::<Field256>(la, lb, seed);
    }
}

#[test]
fn cached_plans_are_shared_and_agree_with_fresh_plans() {
    let a = NttPlan::<Field64>::get(64);
    let b = NttPlan::<Field64>::get(64);
    assert!(std::sync::Arc::ptr_eq(&a, &b), "same size must hit the cache");
    let fresh = NttPlan::<Field64>::new(64);
    assert_eq!(a.domain(), fresh.domain());
    assert_eq!(a.omega(), fresh.omega());
    // Different fields at the same size are distinct cache entries.
    let c = NttPlan::<Field32>::get(64);
    assert_eq!(c.size(), 64);
}
