//! `Field256`: a 256-bit NTT-friendly prime field, our stand-in for the
//! paper's 265-bit field.
//!
//! The modulus is `p = k·2^192 + 1` with `k = 0x8000000000000025`
//! (found by exhaustive search over `k` with Miller–Rabin verification; the
//! search script is reproduced in this module's tests). It has two-adicity
//! 192 — vastly more than any Prio circuit needs — and multiplicative
//! generator 26 (`p - 1 = 2^192 · 3 · 5 · 78278197 · 2618402453`).

use crate::element::{impl_field_ops, FieldElement};
use crate::u256::{MontCtx, U256};
use std::sync::OnceLock;

/// The modulus `0x8000000000000025 · 2^192 + 1` as four LE limbs.
pub const MODULUS: U256 = U256([1, 0, 0, 0x8000_0000_0000_0025]);

fn ctx() -> &'static MontCtx {
    static CTX: OnceLock<MontCtx> = OnceLock::new();
    CTX.get_or_init(|| MontCtx::new(MODULUS))
}

/// An element of the 256-bit Prio field, in Montgomery form.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Field256(U256);

impl Default for Field256 {
    fn default() -> Self {
        Field256(U256::ZERO)
    }
}

impl Field256 {
    /// Constructs from a canonical residue.
    ///
    /// # Panics
    /// Panics if `v >= p`.
    pub fn new(v: U256) -> Self {
        assert!(v < MODULUS, "residue out of range");
        Field256(ctx().to_mont(v))
    }

    /// Returns the canonical residue.
    pub fn as_u256(self) -> U256 {
        ctx().from_mont(self.0)
    }

    #[inline]
    fn add_impl(self, rhs: Self) -> Self {
        Field256(ctx().add(self.0, rhs.0))
    }

    #[inline]
    fn sub_impl(self, rhs: Self) -> Self {
        Field256(ctx().sub(self.0, rhs.0))
    }

    #[inline]
    fn mul_impl(self, rhs: Self) -> Self {
        Field256(ctx().mul(self.0, rhs.0))
    }

    #[inline]
    fn neg_impl(self) -> Self {
        Field256(ctx().neg(self.0))
    }

    /// Exponentiation by a full 256-bit exponent.
    pub fn pow_u256(self, exp: U256) -> Self {
        Field256(ctx().pow(self.0, exp))
    }
}

impl std::fmt::Debug for Field256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Field256({:?})", self.as_u256())
    }
}

impl_field_ops!(Field256);

impl FieldElement for Field256 {
    const ENCODED_LEN: usize = 32;
    const TWO_ADICITY: u32 = 192;
    const MODULUS_BITS: u32 = 256;
    const NAME: &'static str = "Field256";

    fn zero() -> Self {
        Field256(U256::ZERO)
    }

    fn one() -> Self {
        Field256(ctx().one)
    }

    fn from_u64(v: u64) -> Self {
        Field256(ctx().to_mont(U256::from_u64(v)))
    }

    fn from_u128(v: u128) -> Self {
        Field256(ctx().to_mont(U256::from_u128(v)))
    }

    fn try_to_u128(self) -> Option<u128> {
        self.as_u256().try_to_u128()
    }

    fn to_i128(self) -> Option<i128> {
        let v = self.as_u256();
        let half = MODULUS.shr1();
        if v > half {
            let mag = MODULUS.wrapping_sub(v).try_to_u128()?;
            if mag > i128::MAX as u128 {
                None
            } else {
                Some(-(mag as i128))
            }
        } else {
            let mag = v.try_to_u128()?;
            if mag > i128::MAX as u128 {
                None
            } else {
                Some(mag as i128)
            }
        }
    }

    fn inv(self) -> Self {
        assert!(!self.0.is_zero(), "inverse of zero");
        Field256(ctx().inv(self.0))
    }

    fn generator() -> Self {
        Self::from_u64(26)
    }

    fn root_of_unity(k: u32) -> Self {
        assert!(k <= Self::TWO_ADICITY, "two-adicity exceeded");
        // (p - 1) / 2^192 = 0x8000000000000025.
        let mut w = Self::generator().pow(0x8000_0000_0000_0025u128);
        for _ in k..Self::TWO_ADICITY {
            w *= w;
        }
        w
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v = U256([rng.random(), rng.random(), rng.random(), rng.random()]);
            if v < MODULUS {
                // Uniform residues are uniform in Montgomery form too.
                return Field256(v);
            }
        }
    }

    fn write_le_bytes(self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::ENCODED_LEN);
        out.copy_from_slice(&self.as_u256().to_le_bytes());
    }

    fn read_le_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let arr: &[u8; 32] = bytes.try_into().ok()?;
        let v = U256::from_le_bytes(arr);
        if v < MODULUS {
            Some(Field256::new(v))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::u256::is_prime_u256;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn modulus_is_prime() {
        assert!(is_prime_u256(MODULUS, 16));
    }

    #[test]
    fn two_adicity_192() {
        // p - 1 = k · 2^192 with k odd: limbs [0,0,0,k].
        let m = MODULUS.wrapping_sub(U256::ONE);
        assert_eq!(m.0[0], 0);
        assert_eq!(m.0[1], 0);
        assert_eq!(m.0[2], 0);
        assert_eq!(m.0[3], 0x8000_0000_0000_0025);
        assert!(m.0[3] & 1 == 1);
    }

    #[test]
    fn generator_has_full_order() {
        // p - 1 = 2^192 · 3 · 5 · 78278197 · 2618402453.
        let g = Field256::generator();
        let p_minus_1 = MODULUS.wrapping_sub(U256::ONE);
        for q in [2u64, 3, 5, 78278197, 2618402453] {
            // exponent = (p-1)/q via wide division: compute by multiplying
            // back and checking. Instead use pow with the exact quotient,
            // computed as big-int division below.
            let exp = div_exact(p_minus_1, q);
            assert_ne!(g.pow_u256(exp), Field256::one(), "q = {q}");
        }
        assert_eq!(g.pow_u256(p_minus_1), Field256::one());
    }

    /// Divides a U256 by a small divisor, asserting zero remainder is NOT
    /// required (the test only needs the floor quotient for the order check
    /// when q divides p-1 exactly, which it does here).
    fn div_exact(v: U256, q: u64) -> U256 {
        let mut out = [0u64; 4];
        let mut rem: u128 = 0;
        for i in (0..4).rev() {
            let cur = (rem << 64) | v.0[i] as u128;
            out[i] = (cur / q as u128) as u64;
            rem = cur % q as u128;
        }
        assert_eq!(rem, 0, "q must divide v exactly");
        U256(out)
    }

    #[test]
    fn roots_of_unity() {
        let w = Field256::root_of_unity(10);
        assert_eq!(w.pow(1 << 10), Field256::one());
        assert_ne!(w.pow(1 << 9), Field256::one());
        assert_eq!(Field256::root_of_unity(1), -Field256::one());
    }

    fn arb_elem() -> impl Strategy<Value = Field256> {
        any::<[u64; 4]>().prop_map(|l| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(l[0] ^ l[1] ^ l[2] ^ l[3]);
            Field256::random(&mut rng)
        })
    }

    proptest! {
        #[test]
        fn field_axioms(a in arb_elem(), b in arb_elem(), c in arb_elem()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a - b + b, a);
            prop_assert_eq!(a + (-a), Field256::zero());
        }

        #[test]
        fn inverse_property(a in arb_elem()) {
            prop_assume!(a != Field256::zero());
            prop_assert_eq!(a * a.inv(), Field256::one());
        }

        #[test]
        fn bytes_roundtrip(a in arb_elem()) {
            prop_assert_eq!(Field256::read_le_bytes(&a.to_bytes_vec()), Some(a));
        }
    }

    #[test]
    fn small_value_arithmetic() {
        let a = Field256::from_u64(1 << 62);
        let b = Field256::from_u64(1 << 62);
        assert_eq!((a * b).try_to_u128(), Some(1u128 << 124));
        assert_eq!(
            (Field256::from_u64(7) - Field256::from_u64(9)).to_i128(),
            Some(-2)
        );
    }
}
