//! Radix-2 number-theoretic transform (NTT).
//!
//! Prio's SNIP prover interpolates the polynomials `f` and `g` through the
//! multiplication-gate wire values and multiplies them into `h = f·g`
//! (Section 4.2). Placing the wire values on a power-of-two domain of roots
//! of unity — exactly as the paper's FLINT-backed implementation does — turns
//! interpolation into an inverse NTT and polynomial multiplication into two
//! forward NTTs plus a pointwise product, for `O(M log M)` prover time
//! (Table 2).

use crate::FieldElement;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A precomputed NTT plan for transforms of size `n = 2^k`.
///
/// Holds the twiddle factors for the forward and inverse transforms plus
/// the evaluation domain itself. Twiddle tables are not cheap to build
/// (`O(n)` multiplications plus two inversions), so hot paths should fetch
/// plans through the process-wide memo cache ([`NttPlan::get`]) rather than
/// constructing them per call.
#[derive(Clone, Debug)]
pub struct NttPlan<F: FieldElement> {
    n: usize,
    /// ω^i for i in 0..n/2, ω a primitive n-th root of unity.
    twiddles: Vec<F>,
    /// ω^{-i} for i in 0..n/2.
    inv_twiddles: Vec<F>,
    /// n^{-1} in F.
    n_inv: F,
    /// ω itself.
    omega: F,
    /// The full evaluation domain `[ω^0, ..., ω^{n-1}]`.
    domain: Vec<F>,
}

/// A type-erased cached plan: always an `Arc<NttPlan<F>>` for the `F` in
/// its cache key.
type CachedPlan = Arc<dyn Any + Send + Sync>;

/// Process-wide memo cache of NTT plans, keyed by (field type, size).
/// Plans are immutable once built, so sharing `Arc`s across threads (the
/// batched verify pool in particular) is free of coordination beyond the
/// brief map lookup.
static PLAN_CACHE: OnceLock<Mutex<HashMap<(TypeId, usize), CachedPlan>>> = OnceLock::new();

impl<F: FieldElement> NttPlan<F> {
    /// Creates a plan for size `n`, which must be a power of two not
    /// exceeding `2^F::TWO_ADICITY`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two, is zero, or exceeds the field's
    /// two-adic subgroup.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n > 0, "NTT size must be a power of two");
        let log_n = n.trailing_zeros();
        assert!(
            log_n <= F::TWO_ADICITY,
            "NTT size 2^{log_n} exceeds field two-adicity {}",
            F::TWO_ADICITY
        );
        let omega = F::root_of_unity(log_n);
        let omega_inv = omega.inv();
        let mut twiddles = Vec::with_capacity(n / 2);
        let mut inv_twiddles = Vec::with_capacity(n / 2);
        let mut w = F::one();
        let mut wi = F::one();
        for _ in 0..n / 2 {
            twiddles.push(w);
            inv_twiddles.push(wi);
            w *= omega;
            wi *= omega_inv;
        }
        if n == 1 {
            // Size-1 transform: no twiddles needed, but keep vectors aligned.
            twiddles.push(F::one());
            inv_twiddles.push(F::one());
        }
        let mut domain = Vec::with_capacity(n);
        let mut w = F::one();
        for _ in 0..n {
            domain.push(w);
            w *= omega;
        }
        NttPlan {
            n,
            twiddles,
            inv_twiddles,
            n_inv: F::from_u64(n as u64).inv(),
            omega,
            domain,
        }
    }

    /// Returns the memoized plan for size `n`, building and caching it on
    /// first use. Subsequent calls for the same `(field, n)` pair are a map
    /// lookup plus an `Arc` clone — this is what lets batched verification
    /// pay twiddle-table construction once per process instead of once per
    /// submission.
    ///
    /// # Panics
    /// Panics (on first use of a size) under the same conditions as
    /// [`NttPlan::new`].
    pub fn get(n: usize) -> Arc<NttPlan<F>> {
        let cache = PLAN_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (TypeId::of::<F>(), n);
        if let Some(plan) = cache.lock().expect("plan cache poisoned").get(&key) {
            return Arc::clone(plan)
                .downcast::<NttPlan<F>>()
                .expect("cache entry has the keyed type");
        }
        // Build outside the lock: construction is O(n) field work and may
        // panic on invalid sizes, neither of which should hold the map. Two
        // racing builders are fine — first insert wins, the loser's plan is
        // identical and dropped.
        let plan: CachedPlan = Arc::new(NttPlan::<F>::new(n));
        Arc::clone(
            cache
                .lock()
                .expect("plan cache poisoned")
                .entry(key)
                .or_insert(plan),
        )
        .downcast::<NttPlan<F>>()
        .expect("cache entry has the keyed type")
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.n
    }

    /// The primitive `n`-th root of unity used as the evaluation domain
    /// generator: domain point `t` is `omega^t`.
    pub fn omega(&self) -> F {
        self.omega
    }

    /// The evaluation domain `[ω^0, ω^1, ..., ω^{n-1}]`, precomputed at
    /// plan construction (no per-call allocation).
    pub fn domain(&self) -> &[F] {
        &self.domain
    }

    /// In-place forward NTT: `values[i] <- P(ω^i)` where `P` has
    /// coefficients `values` on input.
    ///
    /// # Panics
    /// Panics if `values.len() != self.size()`.
    pub fn forward(&self, values: &mut [F]) {
        self.transform(values, false);
    }

    /// In-place inverse NTT: recovers coefficients from evaluations on the
    /// domain.
    ///
    /// # Panics
    /// Panics if `values.len() != self.size()`.
    pub fn inverse(&self, values: &mut [F]) {
        self.transform(values, true);
        for v in values.iter_mut() {
            *v *= self.n_inv;
        }
    }

    fn transform(&self, values: &mut [F], invert: bool) {
        let n = self.n;
        assert_eq!(values.len(), n, "buffer length must equal plan size");
        if n == 1 {
            return;
        }
        bit_reverse_permute(values);
        let twiddles = if invert {
            &self.inv_twiddles
        } else {
            &self.twiddles
        };
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len; // stride into the twiddle table
            for start in (0..n).step_by(len) {
                for i in 0..half {
                    // Lazy-reduction butterfly: Field64/Field32 keep lanes
                    // as non-canonical representatives across levels (the
                    // twiddle is canonical, which is all `butterfly`
                    // requires of its multiplier operand).
                    let w = twiddles[i * step];
                    let (a, b) =
                        F::butterfly(values[start + i], values[start + i + half], w);
                    values[start + i] = a;
                    values[start + i + half] = b;
                }
            }
            len <<= 1;
        }
        // Deferred reductions settle here, before any lane can be compared
        // or serialized.
        for v in values.iter_mut() {
            *v = v.normalize();
        }
    }
}

/// Permutes a slice into bit-reversed index order.
fn bit_reverse_permute<F: Copy>(values: &mut [F]) {
    let n = values.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits);
        let j = j as usize;
        if i < j {
            values.swap(i, j);
        }
    }
}

/// Convenience: next power of two at least `n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field128, Field32, Field64};
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn naive_eval<F: FieldElement>(coeffs: &[F], x: F) -> F {
        coeffs
            .iter()
            .rev()
            .fold(F::zero(), |acc, &c| acc * x + c)
    }

    fn check_roundtrip<F: FieldElement>(n: usize, seed: u64) {
        let plan = NttPlan::<F>::new(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let coeffs: Vec<F> = (0..n).map(|_| F::random(&mut rng)).collect();
        let mut buf = coeffs.clone();
        plan.forward(&mut buf);
        // Spot-check a few evaluations against Horner.
        let domain = plan.domain();
        for i in [0usize, 1, n / 2, n - 1] {
            if i < n {
                assert_eq!(buf[i], naive_eval(&coeffs, domain[i]), "point {i}");
            }
        }
        plan.inverse(&mut buf);
        assert_eq!(buf, coeffs);
    }

    #[test]
    fn roundtrip_field64() {
        for (i, n) in [1usize, 2, 4, 8, 32, 256, 1024].iter().enumerate() {
            check_roundtrip::<Field64>(*n, i as u64);
        }
    }

    #[test]
    fn roundtrip_field128() {
        for (i, n) in [2usize, 16, 128].iter().enumerate() {
            check_roundtrip::<Field128>(*n, 100 + i as u64);
        }
    }

    #[test]
    fn roundtrip_field32() {
        for (i, n) in [2usize, 8, 64].iter().enumerate() {
            check_roundtrip::<Field32>(*n, 200 + i as u64);
        }
    }

    #[test]
    fn forward_of_constant() {
        // The NTT of a constant polynomial is that constant at every point.
        let plan = NttPlan::<Field64>::new(8);
        let mut buf = vec![Field64::zero(); 8];
        buf[0] = Field64::from_u64(5);
        plan.forward(&mut buf);
        assert!(buf.iter().all(|&v| v == Field64::from_u64(5)));
    }

    #[test]
    fn domain_is_cyclic() {
        let plan = NttPlan::<Field64>::new(16);
        let d = plan.domain();
        assert_eq!(d[0], Field64::one());
        assert_eq!(d[1].pow(16), Field64::one());
        assert_eq!(d[8], -Field64::one());
        // All distinct.
        let set: std::collections::HashSet<_> = d.iter().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let _ = NttPlan::<Field64>::new(12);
    }

    proptest! {
        #[test]
        fn linearity(seed in any::<u64>()) {
            let n = 32;
            let plan = NttPlan::<Field64>::new(n);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a: Vec<Field64> = (0..n).map(|_| Field64::random(&mut rng)).collect();
            let b: Vec<Field64> = (0..n).map(|_| Field64::random(&mut rng)).collect();
            let sum: Vec<Field64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
            let mut fa = a.clone();
            let mut fb = b.clone();
            let mut fsum = sum.clone();
            plan.forward(&mut fa);
            plan.forward(&mut fb);
            plan.forward(&mut fsum);
            for i in 0..n {
                prop_assert_eq!(fsum[i], fa[i] + fb[i]);
            }
        }
    }
}
