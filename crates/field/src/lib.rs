//! Finite-field arithmetic for the Prio reproduction.
//!
//! Prio ([Corrigan-Gibbs & Boneh, NSDI 2017]) performs all of its client and
//! server computation in an FFT-friendly prime field `F_p`: client values are
//! additively secret-shared in `F_p`, the SNIP proof system interpolates and
//! evaluates polynomials over `F_p`, and the affine-aggregatable encodings
//! (AFEs) accumulate sums in `F_p`.
//!
//! This crate provides:
//!
//! * the [`FieldElement`] trait, the arithmetic interface every Prio field
//!   implements;
//! * four concrete fields spanning the sizes used in the paper's evaluation:
//!   [`Field32`] (tiny, for exhaustive tests), [`Field64`] (the 64-bit
//!   "Goldilocks" prime, our stand-in for the paper's 87-bit field),
//!   [`Field128`] (the 128-bit libprio prime), and [`Field256`] (a 256-bit
//!   NTT prime, our stand-in for the paper's 265-bit field);
//! * a radix-2 [`ntt`] engine and polynomial helpers in [`poly`], including
//!   the fixed-point Lagrange-kernel evaluation used by the paper's
//!   "verification without interpolation" optimization (Appendix I);
//!
//! # Batched-verification fast paths
//!
//! Two layers of this crate exist to make cross-submission batched SNIP
//! verification cheap:
//!
//! * **Plan memoization** — [`ntt::NttPlan::get`] returns a process-wide
//!   cached `Arc<NttPlan>` per `(field, size)`, so twiddle tables and the
//!   evaluation domain are built once per process rather than once per
//!   polynomial operation, and [`poly::LagrangeKernel::new_pair`] builds the
//!   verifier's `N`/`2N` kernel pair with a *single* Montgomery batch
//!   inversion across both domains' denominators.
//! * **Lazy reduction** — the NTT inner loop runs through
//!   [`element::FieldElement::butterfly`], which [`Field64`] and [`Field32`]
//!   override to defer modular reductions. Soundness bounds: lane values are
//!   raw machine words in `[0, 2^64)` resp. `[0, 2^32)`, both strictly below
//!   `2p`, so (a) products of two lanes never overflow the double-width
//!   reduction, (b) the subtrahend of the lazy subtraction is always a
//!   fully-reduced multiplier output, and (c) one conditional subtraction
//!   ([`element::FieldElement::normalize`], applied to every lane when a
//!   transform finishes) restores the canonical residue. Lazy
//!   representatives never escape the transform.
//! * raw 256-bit integer and Montgomery machinery in [`u256`], reused by the
//!   `prio-crypto` crate for its ed25519 implementation.
//!
//! All field parameters (primality, 2-adicity, generators) are checked by the
//! test suite with a from-scratch Miller–Rabin test.
//!
//! [Corrigan-Gibbs & Boneh, NSDI 2017]: https://crypto.stanford.edu/prio/

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod element;
pub mod field128;
pub mod field256;
pub mod field32;
pub mod field64;
pub mod ntt;
pub mod poly;
pub mod primality;
pub mod u256;

pub use element::{FieldElement, FieldSliceExt};
pub use field128::Field128;
pub use field256::Field256;
pub use field32::Field32;
pub use field64::Field64;

/// Splits `x` into `n` uniformly random additive shares that sum to `x`.
///
/// This is the `s`-out-of-`s` additive secret-sharing scheme of Section 3 of
/// the paper: any `n - 1` shares are jointly uniform and reveal nothing about
/// `x`.
pub fn share_additive<F: FieldElement, R: rand::Rng + ?Sized>(
    x: F,
    n: usize,
    rng: &mut R,
) -> Vec<F> {
    assert!(n >= 1, "need at least one share");
    let mut shares: Vec<F> = (0..n - 1).map(|_| F::random(rng)).collect();
    let sum: F = shares.iter().copied().fold(F::zero(), |a, b| a + b);
    shares.push(x - sum);
    shares
}

/// Splits each element of the vector `xs` into `n` additive share vectors.
pub fn share_additive_vec<F: FieldElement, R: rand::Rng + ?Sized>(
    xs: &[F],
    n: usize,
    rng: &mut R,
) -> Vec<Vec<F>> {
    assert!(n >= 1, "need at least one share");
    let mut out: Vec<Vec<F>> = (0..n - 1)
        .map(|_| (0..xs.len()).map(|_| F::random(rng)).collect())
        .collect();
    let mut last = xs.to_vec();
    for share in &out {
        for (l, s) in last.iter_mut().zip(share.iter()) {
            *l -= *s;
        }
    }
    out.push(last);
    out
}

/// Reconstructs a secret from its additive shares.
pub fn unshare_additive<F: FieldElement>(shares: &[F]) -> F {
    shares.iter().copied().fold(F::zero(), |a, b| a + b)
}

/// Reconstructs a vector secret from additive share vectors.
///
/// # Panics
/// Panics if the share vectors have inconsistent lengths.
pub fn unshare_additive_vec<F: FieldElement>(shares: &[Vec<F>]) -> Vec<F> {
    let len = shares.first().map(|s| s.len()).unwrap_or(0);
    let mut out = vec![F::zero(); len];
    for share in shares {
        assert_eq!(share.len(), len, "inconsistent share vector lengths");
        for (o, s) in out.iter_mut().zip(share.iter()) {
            *o += *s;
        }
    }
    out
}

/// Computes the multiplicative inverses of all elements in `xs` using
/// Montgomery's batch-inversion trick (one field inversion plus `3n` muls).
///
/// # Panics
/// Panics if any element is zero.
pub fn batch_inverse<F: FieldElement>(xs: &[F]) -> Vec<F> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut prefix = Vec::with_capacity(xs.len());
    let mut acc = F::one();
    for &x in xs {
        assert!(x != F::zero(), "batch_inverse: zero element");
        prefix.push(acc);
        acc *= x;
    }
    let mut inv = acc.inv();
    let mut out = vec![F::zero(); xs.len()];
    for i in (0..xs.len()).rev() {
        out[i] = inv * prefix[i];
        inv *= xs[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn share_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for n in 1..6 {
            let x = Field64::random(&mut rng);
            let shares = share_additive(x, n, &mut rng);
            assert_eq!(shares.len(), n);
            assert_eq!(unshare_additive(&shares), x);
        }
    }

    #[test]
    fn share_vec_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let xs: Vec<Field128> = (0..17).map(|_| Field128::random(&mut rng)).collect();
        let shares = share_additive_vec(&xs, 4, &mut rng);
        assert_eq!(unshare_additive_vec(&shares), xs);
    }

    #[test]
    fn shares_are_not_trivial() {
        // With overwhelming probability a share is not the secret itself.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Field128::from_u64(42);
        let shares = share_additive(x, 3, &mut rng);
        assert!(shares.iter().any(|&s| s != x));
    }

    #[test]
    fn batch_inverse_matches_inv() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let xs: Vec<Field64> = (0..33)
            .map(|_| loop {
                let x = Field64::random(&mut rng);
                if x != Field64::zero() {
                    break x;
                }
            })
            .collect();
        let invs = batch_inverse(&xs);
        for (x, i) in xs.iter().zip(invs.iter()) {
            assert_eq!(*x * *i, Field64::one());
        }
    }

    #[test]
    fn batch_inverse_empty() {
        assert!(batch_inverse::<Field64>(&[]).is_empty());
    }
}
