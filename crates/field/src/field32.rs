//! `Field32`: a tiny NTT-friendly field, `p = 3·2^30 + 1 = 3221225473`.
//!
//! Used only in tests and property-based checks: its small size makes
//! soundness-failure probabilities non-negligible and observable, which is
//! useful for validating the Schwartz–Zippel analysis of Section 4.3, and it
//! keeps exhaustive tests fast.

use crate::element::{impl_field_ops, FieldElement};

/// The modulus `3·2^30 + 1`.
pub const MODULUS: u32 = 3 * (1 << 30) + 1;

/// An element of `F_p` for `p = 3·2^30 + 1`, stored canonically.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct Field32(u32);

impl Field32 {
    /// Constructs an element from a canonical residue.
    ///
    /// # Panics
    /// Panics if `v >= p`.
    pub const fn new(v: u32) -> Self {
        assert!(v < MODULUS, "residue out of range");
        Field32(v)
    }

    /// Returns the canonical residue.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    #[inline]
    fn add_impl(self, rhs: Self) -> Self {
        let s = self.0 as u64 + rhs.0 as u64;
        Field32(if s >= MODULUS as u64 {
            (s - MODULUS as u64) as u32
        } else {
            s as u32
        })
    }

    #[inline]
    fn sub_impl(self, rhs: Self) -> Self {
        if self.0 >= rhs.0 {
            Field32(self.0 - rhs.0)
        } else {
            Field32(self.0 + (MODULUS - rhs.0))
        }
    }

    #[inline]
    fn mul_impl(self, rhs: Self) -> Self {
        Field32(((self.0 as u64 * rhs.0 as u64) % MODULUS as u64) as u32)
    }

    #[inline]
    fn neg_impl(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Field32(MODULUS - self.0)
        }
    }
}

/// `2^32 mod p = 2^32 − p = 2^30 − 1`: the wraparound compensation for lazy
/// arithmetic on raw u32 representatives.
const EPSILON: u32 = (1 << 30) - 1;

/// Lazy addition of two arbitrary u32 representatives: result represents
/// `a + b (mod p)` in `[0, 2^32) ⊂ [0, 2p)`, skipping the canonicalizing
/// subtraction. After two wraparound compensations the value is below
/// `EPSILON`, so a third cannot occur.
#[inline]
fn lazy_add(a: u32, b: u32) -> u32 {
    let (s, over) = a.overflowing_add(b);
    let (s, over2) = s.overflowing_add(if over { EPSILON } else { 0 });
    s.wrapping_add(if over2 { EPSILON } else { 0 })
}

/// Lazy subtraction `a − b (mod p)` for arbitrary `a` and **canonical**
/// `b < p`: a borrow is compensated by subtracting `EPSILON`, and with
/// `b < p` the compensated value equals `a − b + p > 0`, so no second
/// borrow can occur.
#[inline]
fn lazy_sub(a: u32, b: u32) -> u32 {
    debug_assert!(b < MODULUS);
    let (d, borrow) = a.overflowing_sub(b);
    d.wrapping_sub(if borrow { EPSILON } else { 0 })
}

impl std::fmt::Debug for Field32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Field32({})", self.0)
    }
}

impl_field_ops!(Field32);

impl FieldElement for Field32 {
    const ENCODED_LEN: usize = 4;
    const TWO_ADICITY: u32 = 30;
    const MODULUS_BITS: u32 = 32;
    const NAME: &'static str = "Field32";

    fn zero() -> Self {
        Field32(0)
    }

    fn one() -> Self {
        Field32(1)
    }

    fn from_u64(v: u64) -> Self {
        Field32((v % MODULUS as u64) as u32)
    }

    fn from_u128(v: u128) -> Self {
        Field32((v % MODULUS as u128) as u32)
    }

    fn try_to_u128(self) -> Option<u128> {
        Some(self.0 as u128)
    }

    fn to_i128(self) -> Option<i128> {
        if self.0 > MODULUS / 2 {
            Some(-((MODULUS - self.0) as i128))
        } else {
            Some(self.0 as i128)
        }
    }

    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero");
        self.pow((MODULUS - 2) as u128)
    }

    #[inline]
    fn butterfly(u: Self, v: Self, w: Self) -> (Self, Self) {
        // mul_impl reduces the full u64 product, so any u32 representative
        // of `v` is acceptable and `t` comes back canonical — a valid
        // `lazy_sub` subtrahend.
        let t = v.mul_impl(w).0;
        (Field32(lazy_add(u.0, t)), Field32(lazy_sub(u.0, t)))
    }

    #[inline]
    fn normalize(self) -> Self {
        // Lazy representatives are < 2^32 < 2p (p = 3·2^30 + 1): one
        // conditional subtraction restores the canonical residue.
        if self.0 >= MODULUS {
            Field32(self.0 - MODULUS)
        } else {
            self
        }
    }

    fn generator() -> Self {
        Field32(5)
    }

    fn root_of_unity(k: u32) -> Self {
        assert!(k <= Self::TWO_ADICITY, "two-adicity exceeded");
        let mut w = Self::generator().pow(((MODULUS - 1) >> 30) as u128);
        for _ in k..Self::TWO_ADICITY {
            w *= w;
        }
        w
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v: u32 = rng.random();
            if v < MODULUS {
                return Field32(v);
            }
        }
    }

    fn write_le_bytes(self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::ENCODED_LEN);
        out.copy_from_slice(&self.0.to_le_bytes());
    }

    fn read_le_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let v = u32::from_le_bytes(bytes.try_into().ok()?);
        if v < MODULUS {
            Some(Field32(v))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primality::is_prime_u128;
    use proptest::prelude::*;

    #[test]
    fn modulus_is_prime() {
        assert!(is_prime_u128(MODULUS as u128));
    }

    #[test]
    fn generator_order() {
        // p - 1 = 2^30 * 3.
        let g = Field32::generator();
        assert_ne!(g.pow(((MODULUS - 1) / 2) as u128), Field32::one());
        assert_ne!(g.pow(((MODULUS - 1) / 3) as u128), Field32::one());
        assert_eq!(g.pow((MODULUS - 1) as u128), Field32::one());
    }

    #[test]
    fn known_root() {
        assert_eq!(Field32::root_of_unity(30).as_u32(), 125);
    }

    proptest! {
        #[test]
        fn axioms(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
            let (a, b, c) = (
                Field32::from_u64(a as u64),
                Field32::from_u64(b as u64),
                Field32::from_u64(c as u64),
            );
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a - b + b, a);
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn inv(a in 1u32..MODULUS) {
            let a = Field32::new(a);
            prop_assert_eq!(a * a.inv(), Field32::one());
        }

        #[test]
        fn roundtrip(a in 0u32..MODULUS) {
            let a = Field32::new(a);
            prop_assert_eq!(Field32::read_le_bytes(&a.to_bytes_vec()), Some(a));
        }
    }
}
