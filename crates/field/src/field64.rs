//! `Field64`: the 64-bit "Goldilocks" prime field, `p = 2^64 - 2^32 + 1`.
//!
//! This is our stand-in for the paper's 87-bit FFT-friendly field: it is the
//! natural machine-word-sized NTT field in Rust, with two-adicity 32 (NTTs up
//! to size `2^32`). Reduction exploits the identity `2^64 ≡ 2^32 - 1 (mod p)`.

use crate::element::{impl_field_ops, FieldElement};

/// The Goldilocks modulus `2^64 - 2^32 + 1`.
pub const MODULUS: u64 = 0xffff_ffff_0000_0001;

const EPSILON: u64 = 0xffff_ffff; // 2^32 - 1 == 2^64 mod p

/// An element of `F_p` for `p = 2^64 - 2^32 + 1`, stored as a canonical
/// residue in `[0, p)`.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct Field64(u64);

impl Field64 {
    /// Constructs an element from a canonical residue.
    ///
    /// # Panics
    /// Panics if `v >= p`.
    pub const fn new(v: u64) -> Self {
        assert!(v < MODULUS, "residue out of range");
        Field64(v)
    }

    /// Returns the canonical residue.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    #[inline]
    fn add_impl(self, rhs: Self) -> Self {
        let (sum, over) = self.0.overflowing_add(rhs.0);
        // If the addition wrapped mod 2^64, compensate by adding
        // 2^64 mod p = EPSILON. The compensated add cannot wrap again because
        // sum < p - 1 + EPSILON < 2^64 whenever `over` is set.
        let (sum, over2) = sum.overflowing_add(if over { EPSILON } else { 0 });
        debug_assert!(!over2);
        let _ = over2;
        if sum >= MODULUS {
            Field64(sum - MODULUS)
        } else {
            Field64(sum)
        }
    }

    #[inline]
    fn sub_impl(self, rhs: Self) -> Self {
        let (diff, borrow) = self.0.overflowing_sub(rhs.0);
        // A borrow means we wrapped mod 2^64; subtract EPSILON to compensate.
        let (diff, borrow2) = diff.overflowing_sub(if borrow { EPSILON } else { 0 });
        debug_assert!(!borrow2);
        let _ = borrow2;
        Field64(diff)
    }

    #[inline]
    fn mul_impl(self, rhs: Self) -> Self {
        Field64(reduce128((self.0 as u128) * (rhs.0 as u128)))
    }

    #[inline]
    fn neg_impl(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Field64(MODULUS - self.0)
        }
    }
}

/// Lazy addition of two arbitrary u64 representatives: the result is a
/// representative of `a + b (mod p)` in `[0, 2^64)`, with no final
/// canonicalizing subtraction. Each `2^64` wraparound is compensated by
/// adding `2^64 mod p = EPSILON`; the second compensation cannot wrap again
/// because after two wraps the running value is below `EPSILON`.
#[inline]
fn lazy_add(a: u64, b: u64) -> u64 {
    let (s, over) = a.overflowing_add(b);
    let (s, over2) = s.overflowing_add(if over { EPSILON } else { 0 });
    s.wrapping_add(if over2 { EPSILON } else { 0 })
}

/// Lazy subtraction `a − b (mod p)` for an arbitrary u64 representative `a`
/// and a **canonical** `b < p`. A borrow is compensated by subtracting
/// `EPSILON` (since `−2^64 ≡ −EPSILON mod p`); with `b < p` the compensated
/// value `a − b + 2^64 − EPSILON = a − b + p` is strictly positive, so no
/// second borrow can occur.
#[inline]
fn lazy_sub(a: u64, b: u64) -> u64 {
    debug_assert!(b < MODULUS);
    let (d, borrow) = a.overflowing_sub(b);
    d.wrapping_sub(if borrow { EPSILON } else { 0 })
}

/// Reduces a 128-bit product modulo `p = 2^64 - 2^32 + 1`.
///
/// Writing `x = hi·2^64 + lo` and `hi = hi_hi·2^32 + hi_lo`, we use
/// `2^64 ≡ 2^32 - 1` and `2^96 ≡ -1 (mod p)`:
/// `x ≡ lo - hi_hi + hi_lo·(2^32 - 1) (mod p)`.
#[inline]
fn reduce128(x: u128) -> u64 {
    let lo = x as u64;
    let hi = (x >> 64) as u64;
    let hi_hi = hi >> 32;
    let hi_lo = hi & EPSILON;

    // t0 = lo - hi_hi (mod p)
    let (mut t0, borrow) = lo.overflowing_sub(hi_hi);
    if borrow {
        t0 = t0.wrapping_sub(EPSILON);
    }
    // t1 = hi_lo * (2^32 - 1) < 2^64
    let t1 = hi_lo * EPSILON;
    // result = t0 + t1 (mod p)
    let (mut res, over) = t0.overflowing_add(t1);
    if over {
        res = res.wrapping_add(EPSILON);
    }
    if res >= MODULUS {
        res -= MODULUS;
    }
    res
}

impl std::fmt::Debug for Field64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Field64({})", self.0)
    }
}

impl_field_ops!(Field64);

impl FieldElement for Field64 {
    const ENCODED_LEN: usize = 8;
    const TWO_ADICITY: u32 = 32;
    const MODULUS_BITS: u32 = 64;
    const NAME: &'static str = "Field64";

    fn zero() -> Self {
        Field64(0)
    }

    fn one() -> Self {
        Field64(1)
    }

    fn from_u64(v: u64) -> Self {
        if v >= MODULUS {
            Field64(v - MODULUS)
        } else {
            Field64(v)
        }
    }

    fn from_u128(v: u128) -> Self {
        Field64(reduce128(v))
    }

    fn try_to_u128(self) -> Option<u128> {
        Some(self.0 as u128)
    }

    fn to_i128(self) -> Option<i128> {
        if self.0 > MODULUS / 2 {
            Some(-((MODULUS - self.0) as i128))
        } else {
            Some(self.0 as i128)
        }
    }

    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero");
        self.pow((MODULUS - 2) as u128)
    }

    #[inline]
    fn butterfly(u: Self, v: Self, w: Self) -> (Self, Self) {
        // The product is fully reduced (reduce128 accepts any u128 and
        // returns a canonical residue), so it is a valid `lazy_sub`
        // subtrahend; `u` may be a non-canonical leftover from the previous
        // NTT level. Both outputs stay in [0, 2^64) ⊂ [0, 2p), one deferred
        // subtraction away from canonical.
        let t = v.mul_impl(w).0;
        (Field64(lazy_add(u.0, t)), Field64(lazy_sub(u.0, t)))
    }

    #[inline]
    fn normalize(self) -> Self {
        // Lazy representatives are < 2^64 = p + EPSILON < 2p: one
        // conditional subtraction restores the canonical residue.
        if self.0 >= MODULUS {
            Field64(self.0 - MODULUS)
        } else {
            self
        }
    }

    fn generator() -> Self {
        Field64(7)
    }

    fn root_of_unity(k: u32) -> Self {
        assert!(k <= Self::TWO_ADICITY, "two-adicity exceeded");
        // omega = g^((p-1) / 2^32), then square up to the requested order.
        let mut w = Self::generator().pow(((MODULUS - 1) >> 32) as u128);
        for _ in k..Self::TWO_ADICITY {
            w *= w;
        }
        w
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v: u64 = rng.random();
            if v < MODULUS {
                return Field64(v);
            }
        }
    }

    fn write_le_bytes(self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::ENCODED_LEN);
        out.copy_from_slice(&self.0.to_le_bytes());
    }

    fn read_le_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let v = u64::from_le_bytes(bytes.try_into().ok()?);
        if v < MODULUS {
            Some(Field64(v))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primality::is_prime_u128;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn modulus_is_prime() {
        assert!(is_prime_u128(MODULUS as u128));
    }

    #[test]
    fn two_adicity() {
        let m = MODULUS - 1;
        assert_eq!(m.trailing_zeros(), 32);
    }

    #[test]
    fn generator_has_full_order() {
        // ord(7) divides p-1 = 2^32 * m; check 7^((p-1)/q) != 1 for each
        // prime divisor q of p-1. p-1 = 2^32 * 3 * 5 * 17 * 257 * 65537.
        let g = Field64::generator();
        for q in [2u128, 3, 5, 17, 257, 65537] {
            assert_ne!(g.pow(((MODULUS - 1) as u128) / q), Field64::one());
        }
    }

    #[test]
    fn known_root_of_unity() {
        assert_eq!(Field64::root_of_unity(32).as_u64(), 1753635133440165772);
        assert_eq!(Field64::root_of_unity(1), -Field64::one());
        assert_eq!(Field64::root_of_unity(0), Field64::one());
    }

    #[test]
    fn root_orders() {
        for k in [1u32, 2, 5, 16] {
            let w = Field64::root_of_unity(k);
            assert_eq!(w.pow(1u128 << k), Field64::one());
            assert_ne!(w.pow(1u128 << (k - 1)), Field64::one());
        }
    }

    fn arb_elem() -> impl Strategy<Value = Field64> {
        any::<u64>().prop_map(Field64::from_u64)
    }

    proptest! {
        #[test]
        fn mul_matches_u128_reference(a in arb_elem(), b in arb_elem()) {
            let expect = ((a.as_u64() as u128) * (b.as_u64() as u128)) % (MODULUS as u128);
            prop_assert_eq!((a * b).as_u64() as u128, expect);
        }

        #[test]
        fn add_matches_u128_reference(a in arb_elem(), b in arb_elem()) {
            let expect = ((a.as_u64() as u128) + (b.as_u64() as u128)) % (MODULUS as u128);
            prop_assert_eq!((a + b).as_u64() as u128, expect);
        }

        #[test]
        fn sub_add_roundtrip(a in arb_elem(), b in arb_elem()) {
            prop_assert_eq!(a - b + b, a);
        }

        #[test]
        fn field_axioms(a in arb_elem(), b in arb_elem(), c in arb_elem()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a + Field64::zero(), a);
            prop_assert_eq!(a * Field64::one(), a);
            prop_assert_eq!(a + (-a), Field64::zero());
        }

        #[test]
        fn inverse_property(a in arb_elem()) {
            prop_assume!(a != Field64::zero());
            prop_assert_eq!(a * a.inv(), Field64::one());
        }

        #[test]
        fn serialization_roundtrip(a in arb_elem()) {
            let bytes = a.to_bytes_vec();
            prop_assert_eq!(Field64::read_le_bytes(&bytes), Some(a));
        }
    }

    #[test]
    fn rejects_non_canonical_bytes() {
        let bytes = u64::MAX.to_le_bytes();
        assert_eq!(Field64::read_le_bytes(&bytes), None);
        assert_eq!(Field64::read_le_bytes(&MODULUS.to_le_bytes()), None);
        assert_eq!(Field64::read_le_bytes(&[0u8; 4]), None);
    }

    #[test]
    fn signed_decode() {
        assert_eq!(Field64::from_i64(-5).to_i128(), Some(-5));
        assert_eq!(Field64::from_i64(5).to_i128(), Some(5));
        assert_eq!(Field64::from_i64(-5) + Field64::from_i64(5), Field64::zero());
    }

    #[test]
    fn random_is_well_distributed_smoke() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut acc = 0u128;
        const N: usize = 4096;
        for _ in 0..N {
            acc += Field64::random(&mut rng).as_u64() as u128;
        }
        let mean = acc / N as u128;
        // Mean of uniform samples should be near p/2; allow a wide band.
        let p = MODULUS as u128;
        assert!(mean > p / 4 && mean < 3 * p / 4, "mean {mean} suspicious");
    }
}
