//! Raw 256-bit integer arithmetic and a runtime-configurable Montgomery
//! multiplication context.
//!
//! This module backs [`crate::Field256`] and is reused by `prio-crypto` for
//! the ed25519 base field (`2^255 - 19`) and scalar field (mod `ℓ`): one
//! CIOS Montgomery engine, three moduli.

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl std::fmt::Debug for U256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "0x{:016x}{:016x}{:016x}{:016x}",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Builds from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Builds from a `u128`.
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Returns the value as `u128` if the upper limbs are zero.
    pub fn try_to_u128(self) -> Option<u128> {
        if self.0[2] == 0 && self.0[3] == 0 {
            Some((self.0[0] as u128) | ((self.0[1] as u128) << 64))
        } else {
            None
        }
    }

    /// True iff the value is zero.
    pub fn is_zero(self) -> bool {
        self.0 == [0; 4]
    }

    /// True iff the value is odd.
    pub fn is_odd(self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Returns bit `i` (little-endian numbering).
    pub fn bit(self, i: u32) -> bool {
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(self) -> Option<u32> {
        for limb in (0..4).rev() {
            if self.0[limb] != 0 {
                return Some(limb as u32 * 64 + 63 - self.0[limb].leading_zeros());
            }
        }
        None
    }

    /// Addition with carry-out.
    pub const fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        let mut i = 0;
        while i < 4 {
            let s = self.0[i] as u128 + rhs.0[i] as u128 + carry as u128;
            out[i] = s as u64;
            carry = (s >> 64) as u64;
            i += 1;
        }
        (U256(out), carry != 0)
    }

    /// Subtraction with borrow-out.
    pub const fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        let mut i = 0;
        while i < 4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
            i += 1;
        }
        (U256(out), borrow != 0)
    }

    /// Wrapping addition mod `2^256`.
    pub const fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction mod `2^256`.
    pub const fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Shifts left by one bit (dropping overflow).
    pub const fn shl1(self) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        let mut i = 0;
        while i < 4 {
            out[i] = (self.0[i] << 1) | carry;
            carry = self.0[i] >> 63;
            i += 1;
        }
        U256(out)
    }

    /// Shifts right by one bit.
    pub const fn shr1(self) -> U256 {
        let mut out = [0u64; 4];
        let mut i = 0;
        while i < 4 {
            out[i] = self.0[i] >> 1;
            if i < 3 {
                out[i] |= self.0[i + 1] << 63;
            }
            i += 1;
        }
        U256(out)
    }

    /// Full 256×256→512-bit multiplication; returns eight LE limbs.
    pub fn mul_wide(self, rhs: U256) -> [u64; 8] {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u64;
            for j in 0..4 {
                let (lo, hi) = mac(out[i + j], self.0[i], rhs.0[j], carry);
                out[i + j] = lo;
                carry = hi;
            }
            out[i + 4] = carry;
        }
        out
    }

    /// Parses 32 little-endian bytes.
    pub fn from_le_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        U256(limbs)
    }

    /// Serializes to 32 little-endian bytes.
    pub fn to_le_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// `acc + a·b + carry` returned as `(lo, hi)`.
#[inline]
const fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = acc as u128 + (a as u128) * (b as u128) + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Reduces a 512-bit value (eight LE limbs) modulo `m` by binary long
/// division. Slow (512 shift/subtract steps) but only used during context
/// setup and hash-to-scalar conversions.
pub fn mod_wide_slow(limbs: &[u64; 8], m: U256) -> U256 {
    assert!(!m.is_zero(), "modulus must be nonzero");
    let mut rem = U256::ZERO;
    for bit in (0..512).rev() {
        // rem = rem*2 + bit; rem stays < 2m < 2^257, so track the shifted-out
        // bit explicitly.
        let msb = rem.bit(255);
        rem = rem.shl1();
        if (limbs[bit / 64] >> (bit % 64)) & 1 == 1 {
            rem.0[0] |= 1;
        }
        if msb || rem >= m {
            rem = rem.wrapping_sub(m);
        }
    }
    rem
}

/// A Montgomery-multiplication context for a fixed odd 256-bit modulus.
///
/// All values passed to [`MontCtx::mul`], [`MontCtx::add`], etc. are in
/// Montgomery form (`x·2^256 mod m`); convert with [`MontCtx::to_mont`] /
/// [`MontCtx::from_mont`].
#[derive(Clone, Debug)]
pub struct MontCtx {
    /// The modulus `m`.
    pub modulus: U256,
    /// `-m^{-1} mod 2^64`.
    pub n0: u64,
    /// `2^256 mod m` — the Montgomery representation of 1.
    pub one: U256,
    /// `(2^256)^2 mod m`.
    pub r2: U256,
}

impl MontCtx {
    /// Builds a context for an odd modulus.
    ///
    /// # Panics
    /// Panics if `modulus` is even or zero.
    pub fn new(modulus: U256) -> Self {
        assert!(modulus.is_odd(), "Montgomery modulus must be odd");
        // n0 = -m^{-1} mod 2^64 by Newton–Hensel lifting.
        let m0 = modulus.0[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let n0 = inv.wrapping_neg();

        // one = 2^256 mod m: reduce [0,0,0,0,1,0,0,0] (=2^256) as a wide value.
        let mut wide = [0u64; 8];
        wide[4] = 1;
        let one = mod_wide_slow(&wide, modulus);
        // r2 = (2^256)^2 mod m = one^2 mod m.
        let r2 = mod_wide_slow(&one.mul_wide(one), modulus);
        MontCtx {
            modulus,
            n0,
            one,
            r2,
        }
    }

    /// Converts a canonical residue (`< m`) to Montgomery form.
    pub fn to_mont(&self, x: U256) -> U256 {
        debug_assert!(x < self.modulus);
        self.mul(x, self.r2)
    }

    /// Converts from Montgomery form back to a canonical residue.
    pub fn from_mont(&self, x: U256) -> U256 {
        // REDC of the 512-bit value (0, x).
        self.mont_reduce([x.0[0], x.0[1], x.0[2], x.0[3], 0, 0, 0, 0])
    }

    /// Montgomery multiplication (CIOS): returns `a·b·2^{-256} mod m`.
    pub fn mul(&self, a: U256, b: U256) -> U256 {
        self.mont_reduce(a.mul_wide(b))
    }

    /// Montgomery squaring.
    pub fn square(&self, a: U256) -> U256 {
        self.mul(a, a)
    }

    fn mont_reduce(&self, t: [u64; 8]) -> U256 {
        let m = &self.modulus.0;
        let mut t = t;
        let mut extra = 0u64; // the 2^512 overflow column
        for i in 0..4 {
            let k = t[i].wrapping_mul(self.n0);
            let mut carry = 0u64;
            for j in 0..4 {
                let (lo, hi) = mac(t[i + j], k, m[j], carry);
                t[i + j] = lo;
                carry = hi;
            }
            // Propagate the carry into the remaining upper limbs.
            let mut j = i + 4;
            while carry != 0 && j < 8 {
                let (s, c) = t[j].overflowing_add(carry);
                t[j] = s;
                carry = c as u64;
                j += 1;
            }
            extra += carry; // carry out of limb 7
        }
        let mut r = U256([t[4], t[5], t[6], t[7]]);
        if extra != 0 || r >= self.modulus {
            r = r.wrapping_sub(self.modulus);
        }
        r
    }

    /// Modular addition of Montgomery-form values.
    pub fn add(&self, a: U256, b: U256) -> U256 {
        let (s, over) = a.overflowing_add(b);
        if over || s >= self.modulus {
            s.wrapping_sub(self.modulus)
        } else {
            s
        }
    }

    /// Modular subtraction of Montgomery-form values.
    pub fn sub(&self, a: U256, b: U256) -> U256 {
        let (d, borrow) = a.overflowing_sub(b);
        if borrow {
            d.wrapping_add(self.modulus)
        } else {
            d
        }
    }

    /// Modular negation.
    pub fn neg(&self, a: U256) -> U256 {
        if a.is_zero() {
            a
        } else {
            self.modulus.wrapping_sub(a)
        }
    }

    /// Exponentiation by a 256-bit exponent (square-and-multiply, MSB-first).
    pub fn pow(&self, base: U256, exp: U256) -> U256 {
        let mut acc = self.one;
        let Some(top) = exp.highest_bit() else {
            return self.one; // x^0 = 1
        };
        for i in (0..=top).rev() {
            acc = self.square(acc);
            if exp.bit(i) {
                acc = self.mul(acc, base);
            }
        }
        acc
    }

    /// Inverse via Fermat's little theorem (`a^{m-2}`); requires `m` prime.
    ///
    /// # Panics
    /// Panics if `a` is zero.
    pub fn inv(&self, a: U256) -> U256 {
        assert!(!a.is_zero(), "inverse of zero");
        let exp = self.modulus.wrapping_sub(U256::from_u64(2));
        self.pow(a, exp)
    }

    /// Reduces a 512-bit little-endian value modulo `m` and returns it in
    /// Montgomery form. Used for deriving scalars from hash output.
    pub fn from_wide_le_bytes(&self, bytes: &[u8; 64]) -> U256 {
        let mut limbs = [0u64; 8];
        for (i, limb) in limbs.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        let canonical = mod_wide_slow(&limbs, self.modulus);
        self.to_mont(canonical)
    }
}

/// Miller–Rabin primality test over 256-bit integers, used by the test suite
/// to validate field moduli.
pub fn is_prime_u256(n: U256, rounds: usize) -> bool {
    if n < U256::from_u64(2) {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let pp = U256::from_u64(p);
        if n == pp {
            return true;
        }
        // Divisibility check via mod_wide_slow.
        let mut wide = [0u64; 8];
        wide[..4].copy_from_slice(&n.0);
        if mod_wide_slow(&wide, pp).is_zero() {
            return false;
        }
    }
    if !n.is_odd() {
        return false;
    }
    let ctx = MontCtx::new(n);
    let n_minus_1 = n.wrapping_sub(U256::ONE);
    let mut d = n_minus_1;
    let mut r = 0u32;
    while !d.is_odd() {
        d = d.shr1();
        r += 1;
    }
    let one_m = ctx.one;
    let neg_one_m = ctx.neg(ctx.one);
    // Fixed pseudo-random bases derived from small primes; adequate for
    // validating known constants (not adversarial input).
    let bases: Vec<u64> = [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53]
        .iter()
        .copied()
        .take(rounds.max(8))
        .collect();
    'outer: for a in bases {
        let a = ctx.to_mont(U256::from_u64(a));
        let mut x = ctx.pow(a, d);
        if x == one_m || x == neg_one_m {
            continue;
        }
        for _ in 0..r.saturating_sub(1) {
            x = ctx.square(x);
            if x == neg_one_m {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = U256([u64::MAX, 5, 0, 17]);
        let b = U256([3, u64::MAX, u64::MAX, 2]);
        let (s, _) = a.overflowing_add(b);
        let (d, borrow) = s.overflowing_sub(b);
        assert!(!borrow);
        assert_eq!(d, a);
    }

    #[test]
    fn mul_wide_matches_u128() {
        let a = U256::from_u128(0xdead_beef_1234_5678_9abc_def0_1111_2222);
        let b = U256::from_u128(0x1234_5678);
        let wide = a.mul_wide(b);
        // Upper half must be zero for this small product.
        assert_eq!(&wide[4..], &[0u64; 4]);
        let expect = 0xdead_beef_1234_5678_9abc_def0_1111_2222u128;
        // Reference via two u128 multiplies on the split halves.
        let lo = (expect as u64 as u128) * 0x1234_5678u128;
        let hi = (expect >> 64) * 0x1234_5678u128;
        let limb0 = lo as u64;
        let limb1 = ((lo >> 64) + (hi as u64 as u128)) as u64;
        assert_eq!(wide[0], limb0);
        assert_eq!(wide[1], limb1);
    }

    #[test]
    fn mod_wide_small_cases() {
        let mut wide = [0u64; 8];
        wide[0] = 1000;
        assert_eq!(mod_wide_slow(&wide, U256::from_u64(7)), U256::from_u64(6));
        wide[0] = 12;
        assert_eq!(mod_wide_slow(&wide, U256::from_u64(12)), U256::ZERO);
    }

    #[test]
    fn mont_roundtrip() {
        // Modulus: the Goldilocks prime, small enough to cross-check.
        let m = U256::from_u64(0xffff_ffff_0000_0001);
        let ctx = MontCtx::new(m);
        for v in [0u64, 1, 2, 12345, 0xffff_fffe_ffff_ffff] {
            let x = U256::from_u64(v);
            assert_eq!(ctx.from_mont(ctx.to_mont(x)), x, "v = {v}");
        }
        let a = ctx.to_mont(U256::from_u64(1 << 40));
        let b = ctx.to_mont(U256::from_u64(1 << 41));
        let prod = ctx.from_mont(ctx.mul(a, b));
        let expect = ((1u128 << 81) % 0xffff_ffff_0000_0001u128) as u64;
        assert_eq!(prod, U256::from_u64(expect));
    }

    #[test]
    fn pow_and_inv() {
        let m = U256::from_u64(1_000_003); // prime
        let ctx = MontCtx::new(m);
        let a = ctx.to_mont(U256::from_u64(777));
        // Fermat: a^(m-1) = 1.
        assert_eq!(ctx.pow(a, U256::from_u64(1_000_002)), ctx.one);
        let ainv = ctx.inv(a);
        assert_eq!(ctx.mul(a, ainv), ctx.one);
    }

    #[test]
    fn miller_rabin_small() {
        assert!(is_prime_u256(U256::from_u64(2), 8));
        assert!(is_prime_u256(U256::from_u64(3), 8));
        assert!(is_prime_u256(U256::from_u64(1_000_003), 8));
        assert!(!is_prime_u256(U256::from_u64(1_000_001), 8)); // 101 × 9901
        assert!(!is_prime_u256(U256::from_u64(561), 8)); // Carmichael
        assert!(is_prime_u256(U256::from_u64(0xffff_ffff_0000_0001), 8));
    }

    #[test]
    fn bytes_roundtrip() {
        let a = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_le_bytes(&a.to_le_bytes()), a);
    }

    #[test]
    fn comparison() {
        assert!(U256([0, 0, 0, 1]) > U256([u64::MAX, u64::MAX, u64::MAX, 0]));
        assert!(U256::ZERO < U256::ONE);
    }
}
