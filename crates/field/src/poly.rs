//! Polynomial operations over Prio fields: Horner evaluation, NTT-based
//! multiplication and interpolation, and the fixed-point Lagrange kernel of
//! the paper's "verification without interpolation" optimization
//! (Appendix I).

use crate::ntt::{next_pow2, NttPlan};
use crate::{batch_inverse, FieldElement};

/// Evaluates the polynomial with coefficient vector `coeffs` (low degree
/// first) at `x` by Horner's rule.
pub fn eval<F: FieldElement>(coeffs: &[F], x: F) -> F {
    coeffs.iter().rev().fold(F::zero(), |acc, &c| acc * x + c)
}

/// Multiplies two coefficient-form polynomials via NTT.
///
/// The result has length `a.len() + b.len() - 1` (or is empty if either
/// input is empty).
pub fn mul<F: FieldElement>(a: &[F], b: &[F]) -> Vec<F> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let plan = NttPlan::<F>::get(n);
    let mut fa = vec![F::zero(); n];
    fa[..a.len()].copy_from_slice(a);
    let mut fb = vec![F::zero(); n];
    fb[..b.len()].copy_from_slice(b);
    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.inverse(&mut fa);
    fa.truncate(out_len);
    fa
}

/// Interpolates the unique polynomial of degree `< n` through the
/// evaluations `evals` on the power-of-two root-of-unity domain of size
/// `n = evals.len()`; returns its coefficients.
///
/// # Panics
/// Panics if `evals.len()` is not a power of two.
pub fn interpolate_pow2<F: FieldElement>(evals: &[F]) -> Vec<F> {
    let plan = NttPlan::<F>::get(evals.len());
    let mut buf = evals.to_vec();
    plan.inverse(&mut buf);
    buf
}

/// Evaluates a coefficient-form polynomial on the full power-of-two domain
/// of size `n >= coeffs.len()`.
pub fn evaluate_pow2<F: FieldElement>(coeffs: &[F], n: usize) -> Vec<F> {
    assert!(n >= coeffs.len(), "domain too small for the polynomial");
    let plan = NttPlan::<F>::get(n);
    let mut buf = vec![F::zero(); n];
    buf[..coeffs.len()].copy_from_slice(coeffs);
    plan.forward(&mut buf);
    buf
}

/// A precomputed Lagrange evaluation kernel for a root-of-unity domain and a
/// *fixed* evaluation point `r`.
///
/// Given evaluations `P(ω^t)` of a polynomial of degree `< n`, computes
/// `P(r)` as a single inner product `Σ_t λ_t(r)·P(ω^t)` — no interpolation
/// required. This is the Appendix-I optimization: the Prio servers fix `r`
/// for a batch of `Q` submissions, precompute the kernel once, and verify
/// each SNIP with `O(n)` multiplications instead of `O(n log n)`.
///
/// Over the domain `{ω^t}` the Lagrange basis has the closed form
/// `λ_t(r) = (r^n − 1)·ω^t / (n·(r − ω^t))`, derived from the vanishing
/// polynomial `Z(x) = x^n − 1` with `Z'(ω^t) = n·ω^{−t}`.
#[derive(Clone, Debug)]
pub struct LagrangeKernel<F: FieldElement> {
    weights: Vec<F>,
    point: F,
    /// True if `r` happened to land on the domain (then `weights` is a
    /// selector vector).
    on_domain: bool,
}

impl<F: FieldElement> LagrangeKernel<F> {
    /// Builds the kernel for domain size `n` (a power of two) and evaluation
    /// point `r`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or exceeds the field two-adicity.
    pub fn new(n: usize, r: F) -> Self {
        let plan = NttPlan::<F>::get(n);
        let domain = plan.domain();
        // If r is a domain point, evaluation is just selection.
        if let Some(selector) = Self::try_selector(domain, r) {
            return selector;
        }
        let diffs: Vec<F> = domain.iter().map(|&d| r - d).collect();
        let mut batch: Vec<F> = diffs;
        batch.push(F::from_u64(n as u64));
        let inv = batch_inverse(&batch);
        let (inv_diffs, n_inv) = (&inv[..n], inv[n]);
        Self::from_inverses(domain, r, inv_diffs, n_inv)
    }

    /// Builds kernels for two domain sizes at the same evaluation point,
    /// paying a **single** Montgomery batch inversion for both domains'
    /// denominators `(r − ω^t)` and both `n^{-1}` scale factors — one field
    /// inversion per pair instead of four. This is the constructor the
    /// per-batch SNIP `VerifierContext` uses for its `N`/`2N` kernel pair.
    ///
    /// # Panics
    /// As [`LagrangeKernel::new`], for either size.
    pub fn new_pair(n_a: usize, n_b: usize, r: F) -> (Self, Self) {
        let plan_a = NttPlan::<F>::get(n_a);
        let plan_b = NttPlan::<F>::get(n_b);
        let (dom_a, dom_b) = (plan_a.domain(), plan_b.domain());
        // On-domain points make some denominator zero; fall back to the
        // selector-building single constructor (rare: the SNIP verifier
        // rejects such points outright).
        if dom_a.contains(&r) || dom_b.contains(&r) {
            return (Self::new(n_a, r), Self::new(n_b, r));
        }
        let mut batch: Vec<F> = Vec::with_capacity(n_a + n_b + 2);
        batch.extend(dom_a.iter().map(|&d| r - d));
        batch.extend(dom_b.iter().map(|&d| r - d));
        batch.push(F::from_u64(n_a as u64));
        batch.push(F::from_u64(n_b as u64));
        let inv = batch_inverse(&batch);
        (
            Self::from_inverses(dom_a, r, &inv[..n_a], inv[n_a + n_b]),
            Self::from_inverses(dom_b, r, &inv[n_a..n_a + n_b], inv[n_a + n_b + 1]),
        )
    }

    /// The selector kernel for an on-domain point, if `r` is one.
    fn try_selector(domain: &[F], r: F) -> Option<Self> {
        let idx = domain.iter().position(|&d| d == r)?;
        let mut weights = vec![F::zero(); domain.len()];
        weights[idx] = F::one();
        Some(LagrangeKernel {
            weights,
            point: r,
            on_domain: true,
        })
    }

    /// Assembles the off-domain kernel weights
    /// `λ_t(r) = Z(r)·n^{-1}·ω^t·(r − ω^t)^{-1}` from precomputed inverses.
    fn from_inverses(domain: &[F], r: F, inv_diffs: &[F], n_inv: F) -> Self {
        let z_r = r.pow(domain.len() as u128) - F::one(); // nonzero off-domain
        let scale = z_r * n_inv;
        let weights = domain
            .iter()
            .zip(inv_diffs)
            .map(|(&w_t, &inv_diff)| scale * w_t * inv_diff)
            .collect();
        LagrangeKernel {
            weights,
            point: r,
            on_domain: false,
        }
    }

    /// The evaluation point `r`.
    pub fn point(&self) -> F {
        self.point
    }

    /// Whether the point coincides with a domain element (a soundness hazard
    /// the SNIP verifier must avoid; see Appendix D.2).
    pub fn is_on_domain(&self) -> bool {
        self.on_domain
    }

    /// The kernel weights `λ_t(r)`.
    pub fn weights(&self) -> &[F] {
        &self.weights
    }

    /// Computes `P(r)` from evaluations of `P` on the domain.
    ///
    /// # Panics
    /// Panics if `evals.len()` differs from the domain size.
    pub fn eval(&self, evals: &[F]) -> F {
        assert_eq!(evals.len(), self.weights.len(), "length mismatch");
        evals
            .iter()
            .zip(&self.weights)
            .fold(F::zero(), |acc, (&e, &w)| acc + e * w)
    }
}

/// Interpolates through arbitrary (distinct) points by classic Lagrange
/// interpolation in `O(n^2)`. Used only in tests and as a reference
/// implementation for the NTT path.
pub fn interpolate_naive<F: FieldElement>(points: &[(F, F)]) -> Vec<F> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let mut coeffs = vec![F::zero(); n];
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // basis_i(x) = Π_{j≠i} (x - x_j) / (x_i - x_j)
        let mut basis = vec![F::one()];
        let mut denom = F::one();
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            // basis *= (x - xj)
            let mut next = vec![F::zero(); basis.len() + 1];
            for (k, &c) in basis.iter().enumerate() {
                next[k + 1] += c;
                next[k] -= c * xj;
            }
            basis = next;
            denom *= xi - xj;
        }
        let scale = yi * denom.inv();
        for (k, &c) in basis.iter().enumerate() {
            coeffs[k] += c * scale;
        }
    }
    coeffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field128, Field64};
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rand_poly<F: FieldElement>(deg: usize, seed: u64) -> Vec<F> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..=deg).map(|_| F::random(&mut rng)).collect()
    }

    #[test]
    fn horner_basics() {
        // p(x) = 3 + 2x + x^2
        let p: Vec<Field64> = [3u64, 2, 1].iter().map(|&c| Field64::from_u64(c)).collect();
        assert_eq!(eval(&p, Field64::from_u64(0)), Field64::from_u64(3));
        assert_eq!(eval(&p, Field64::from_u64(2)), Field64::from_u64(11));
        assert_eq!(eval::<Field64>(&[], Field64::from_u64(5)), Field64::zero());
    }

    #[test]
    fn mul_matches_schoolbook() {
        let a = rand_poly::<Field64>(7, 1);
        let b = rand_poly::<Field64>(12, 2);
        let fast = mul(&a, &b);
        let mut slow = vec![Field64::zero(); a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                slow[i + j] += x * y;
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn mul_empty() {
        assert!(mul::<Field64>(&[], &[Field64::one()]).is_empty());
    }

    #[test]
    fn interpolate_evaluate_roundtrip() {
        let coeffs = rand_poly::<Field128>(15, 3);
        let evals = evaluate_pow2(&coeffs, 16);
        let back = interpolate_pow2(&evals);
        assert_eq!(back, coeffs);
    }

    #[test]
    fn lagrange_kernel_matches_interpolation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let coeffs = rand_poly::<Field64>(31, 5);
        let evals = evaluate_pow2(&coeffs, 32);
        for _ in 0..8 {
            let r = Field64::random(&mut rng);
            let kernel = LagrangeKernel::new(32, r);
            assert_eq!(kernel.eval(&evals), eval(&coeffs, r));
        }
    }

    #[test]
    fn lagrange_kernel_on_domain_point() {
        let coeffs = rand_poly::<Field64>(7, 6);
        let evals = evaluate_pow2(&coeffs, 8);
        let plan = NttPlan::<Field64>::new(8);
        let domain = plan.domain();
        let kernel = LagrangeKernel::new(8, domain[3]);
        assert!(kernel.is_on_domain());
        assert_eq!(kernel.eval(&evals), evals[3]);
    }

    #[test]
    fn naive_interpolation_reference() {
        let pts: Vec<(Field64, Field64)> = vec![
            (Field64::from_u64(1), Field64::from_u64(2)),
            (Field64::from_u64(2), Field64::from_u64(5)),
            (Field64::from_u64(3), Field64::from_u64(10)),
        ];
        // These points lie on x^2 + 1.
        let coeffs = interpolate_naive(&pts);
        assert_eq!(
            coeffs,
            vec![Field64::from_u64(1), Field64::zero(), Field64::from_u64(1)]
        );
    }

    proptest! {
        #[test]
        fn kernel_is_linear(seed in any::<u64>()) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let r = Field64::random(&mut rng);
            let kernel = LagrangeKernel::new(16, r);
            let a = rand_poly::<Field64>(15, seed.wrapping_add(1));
            let b = rand_poly::<Field64>(15, seed.wrapping_add(2));
            let ea = evaluate_pow2(&a, 16);
            let eb = evaluate_pow2(&b, 16);
            let esum: Vec<Field64> = ea.iter().zip(&eb).map(|(&x, &y)| x + y).collect();
            prop_assert_eq!(kernel.eval(&esum), kernel.eval(&ea) + kernel.eval(&eb));
        }

        #[test]
        fn interpolate_through_degree_bound(seed in any::<u64>()) {
            // Interpolating a degree-(n-1) polynomial's evaluations recovers it.
            let coeffs = rand_poly::<Field64>(7, seed);
            let evals = evaluate_pow2(&coeffs, 8);
            prop_assert_eq!(interpolate_pow2(&evals), coeffs);
        }
    }
}
