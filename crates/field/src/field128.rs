//! `Field128`: a 128-bit NTT-friendly prime field in Montgomery form.
//!
//! The modulus `p = 2^66·(2^62 - 7) + 2^66 + 1 =
//! 340282366920938462946865773367900766209` is the field used by the
//! production `libprio` Rust implementation. It has two-adicity 66 and
//! multiplicative generator 7. Elements are kept in Montgomery
//! representation (`x·2^128 mod p`) so multiplication costs one 128×128→256
//! widening multiply plus one Montgomery reduction.

use crate::element::{impl_field_ops, FieldElement};

/// The 128-bit modulus.
pub const MODULUS: u128 = 340282366920938462946865773367900766209;

/// `-p^{-1} mod 2^128`, computed at compile time by Newton iteration.
const NP: u128 = neg_inv_mod_2_128(MODULUS);

/// `R = 2^128 mod p` (the Montgomery radix residue, i.e. `one()`).
const R: u128 = MODULUS.wrapping_neg(); // valid because p > 2^127

/// `R^2 mod p`, used to convert into Montgomery form.
const R2: u128 = compute_r2();

const fn neg_inv_mod_2_128(p: u128) -> u128 {
    // Newton–Hensel lifting: x_{k+1} = x_k (2 - p x_k) doubles the number of
    // correct low bits each round; 7 rounds reach 128 bits from 1 bit.
    let mut x: u128 = 1;
    let mut i = 0;
    while i < 7 {
        x = x.wrapping_mul(2u128.wrapping_sub(p.wrapping_mul(x)));
        i += 1;
    }
    x.wrapping_neg()
}

const fn compute_r2() -> u128 {
    // R ≡ 2^128 (mod p), so doubling R 128 times gives R·2^128 ≡ R² (mod p).
    let mut r2 = R;
    let mut i = 0;
    while i < 128 {
        let doubled = r2 << 1;
        // r2 < p, so 2·r2 < 2^129; detect wraparound via the shifted-out bit.
        let wrapped = r2 >> 127 == 1;
        r2 = if wrapped {
            // value = 2^128 + doubled; value mod p = doubled + (2^128 - p)
            doubled.wrapping_add(MODULUS.wrapping_neg())
        } else {
            doubled
        };
        if r2 >= MODULUS {
            r2 -= MODULUS;
        }
        i += 1;
    }
    r2
}

/// Full 128×128→256-bit multiplication, returning `(hi, lo)`.
#[inline]
const fn mul_wide(a: u128, b: u128) -> (u128, u128) {
    let a0 = a as u64 as u128;
    let a1 = a >> 64;
    let b0 = b as u64 as u128;
    let b1 = b >> 64;
    let ll = a0 * b0;
    let lh = a0 * b1;
    let hl = a1 * b0;
    let hh = a1 * b1;
    let (mid, mid_c) = lh.overflowing_add(hl);
    let (lo, lo_c) = ll.overflowing_add((mid as u64 as u128) << 64);
    let hi = hh + (mid >> 64) + ((mid_c as u128) << 64) + lo_c as u128;
    (hi, lo)
}

/// Montgomery reduction: given `t = hi·2^128 + lo < p·2^128`, returns
/// `t·2^{-128} mod p`.
#[inline]
const fn redc(hi: u128, lo: u128) -> u128 {
    let m = lo.wrapping_mul(NP);
    let (m_hi, m_lo) = mul_wide(m, MODULUS);
    // lo + m_lo is ≡ 0 (mod 2^128) by construction of m; only the carry
    // out matters.
    let (_, carry) = lo.overflowing_add(m_lo);
    let (r, o1) = hi.overflowing_add(m_hi);
    let (r, o2) = r.overflowing_add(carry as u128);
    if o1 || o2 {
        // True value is 2^128 + r with r < p; subtracting p modulo 2^128
        // yields the reduced representative.
        r.wrapping_sub(MODULUS)
    } else if r >= MODULUS {
        r - MODULUS
    } else {
        r
    }
}

/// An element of the 128-bit Prio field, stored in Montgomery form.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash)]
pub struct Field128(u128);

impl Field128 {
    /// Returns the canonical (non-Montgomery) residue.
    pub fn as_u128(self) -> u128 {
        redc(0, self.0)
    }

    /// Constructs an element from a canonical residue `< p`.
    ///
    /// # Panics
    /// Panics if `v >= p`.
    pub fn new(v: u128) -> Self {
        assert!(v < MODULUS, "residue out of range");
        Field128(redc_mul(v, R2))
    }

    #[inline]
    fn add_impl(self, rhs: Self) -> Self {
        let (s, over) = self.0.overflowing_add(rhs.0);
        Field128(if over {
            s.wrapping_sub(MODULUS)
        } else if s >= MODULUS {
            s - MODULUS
        } else {
            s
        })
    }

    #[inline]
    fn sub_impl(self, rhs: Self) -> Self {
        let (d, borrow) = self.0.overflowing_sub(rhs.0);
        Field128(if borrow { d.wrapping_add(MODULUS) } else { d })
    }

    #[inline]
    fn mul_impl(self, rhs: Self) -> Self {
        Field128(redc_mul(self.0, rhs.0))
    }

    #[inline]
    fn neg_impl(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Field128(MODULUS - self.0)
        }
    }
}

#[inline]
const fn redc_mul(a: u128, b: u128) -> u128 {
    let (hi, lo) = mul_wide(a, b);
    redc(hi, lo)
}

impl std::fmt::Debug for Field128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Field128({})", self.as_u128())
    }
}

impl_field_ops!(Field128);

impl FieldElement for Field128 {
    const ENCODED_LEN: usize = 16;
    const TWO_ADICITY: u32 = 66;
    const MODULUS_BITS: u32 = 128;
    const NAME: &'static str = "Field128";

    fn zero() -> Self {
        Field128(0)
    }

    fn one() -> Self {
        Field128(R)
    }

    fn from_u64(v: u64) -> Self {
        Field128(redc_mul(v as u128, R2))
    }

    fn from_u128(v: u128) -> Self {
        let v = if v >= MODULUS { v - MODULUS } else { v };
        Field128(redc_mul(v, R2))
    }

    fn try_to_u128(self) -> Option<u128> {
        Some(self.as_u128())
    }

    fn to_i128(self) -> Option<i128> {
        let v = self.as_u128();
        if v > MODULUS / 2 {
            let mag = MODULUS - v;
            if mag > i128::MAX as u128 {
                None
            } else {
                Some(-(mag as i128))
            }
        } else if v > i128::MAX as u128 {
            None
        } else {
            Some(v as i128)
        }
    }

    fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero");
        self.pow(MODULUS - 2)
    }

    fn generator() -> Self {
        Self::from_u64(7)
    }

    fn root_of_unity(k: u32) -> Self {
        assert!(k <= Self::TWO_ADICITY, "two-adicity exceeded");
        let mut w = Self::generator().pow((MODULUS - 1) >> 66);
        for _ in k..Self::TWO_ADICITY {
            w *= w;
        }
        w
    }

    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let v: u128 = rng.random();
            if v < MODULUS {
                // A uniform residue is also uniform in Montgomery form, so
                // skip the conversion multiply.
                return Field128(v);
            }
        }
    }

    fn write_le_bytes(self, out: &mut [u8]) {
        assert_eq!(out.len(), Self::ENCODED_LEN);
        out.copy_from_slice(&self.as_u128().to_le_bytes());
    }

    fn read_le_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let v = u128::from_le_bytes(bytes.try_into().ok()?);
        if v < MODULUS {
            Some(Field128::new(v))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primality::is_prime_u128;
    use proptest::prelude::*;

    #[test]
    fn modulus_is_prime() {
        assert!(is_prime_u128(MODULUS));
    }

    #[test]
    fn two_adicity() {
        assert_eq!((MODULUS - 1).trailing_zeros(), 66);
    }

    #[test]
    fn montgomery_constants() {
        // NP * p ≡ -1 (mod 2^128)
        assert_eq!(MODULUS.wrapping_mul(NP), u128::MAX);
        // one() decodes to 1
        assert_eq!(Field128::one().as_u128(), 1);
        assert_eq!(Field128::from_u64(1), Field128::one());
    }

    #[test]
    fn generator_has_full_order() {
        // p - 1 = 2^66 * 3 * 3491 * 440340496364689 (complete factorization;
        // the large cofactor is prime by Miller–Rabin).
        let g = Field128::generator();
        let order = MODULUS - 1;
        for q in [2u128, 3, 3491, 440340496364689] {
            assert_ne!(g.pow(order / q), Field128::one(), "q = {q}");
        }
        assert_eq!(g.pow(order), Field128::one());
    }

    #[test]
    fn roots_of_unity() {
        let w = Field128::root_of_unity(66);
        assert_ne!(w.pow(1u128 << 65), Field128::one());
        assert_eq!(w.pow(1u128 << 66), Field128::one());
        assert_eq!(Field128::root_of_unity(1), -Field128::one());
    }

    fn arb_elem() -> impl Strategy<Value = Field128> {
        any::<u128>().prop_map(Field128::from_u128)
    }

    proptest! {
        #[test]
        fn mul_matches_schoolbook(a in any::<u64>(), b in any::<u64>()) {
            // Products of 64-bit values do not wrap mod p, giving an exact
            // integer reference.
            let fa = Field128::from_u64(a);
            let fb = Field128::from_u64(b);
            prop_assert_eq!((fa * fb).as_u128(), (a as u128) * (b as u128));
        }

        #[test]
        fn field_axioms(a in arb_elem(), b in arb_elem(), c in arb_elem()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!((a * b) * c, a * (b * c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a - b + b, a);
            prop_assert_eq!(a + (-a), Field128::zero());
        }

        #[test]
        fn inverse_property(a in arb_elem()) {
            prop_assume!(a != Field128::zero());
            prop_assert_eq!(a * a.inv(), Field128::one());
        }

        #[test]
        fn canonical_roundtrip(a in arb_elem()) {
            prop_assert_eq!(Field128::new(a.as_u128()), a);
            prop_assert_eq!(Field128::read_le_bytes(&a.to_bytes_vec()), Some(a));
        }
    }

    #[test]
    fn rejects_unreduced_bytes() {
        assert_eq!(Field128::read_le_bytes(&MODULUS.to_le_bytes()), None);
        assert_eq!(Field128::read_le_bytes(&u128::MAX.to_le_bytes()), None);
    }
}
