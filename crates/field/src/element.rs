//! The [`FieldElement`] trait: the arithmetic interface shared by all Prio
//! fields.

use std::fmt::Debug;
use std::hash::Hash;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An element of a prime field `F_p` with high two-adicity (i.e., `2^k`
/// divides `p - 1` for large `k`), as required by the NTT-based polynomial
/// operations in Prio's SNIP construction.
///
/// Implementations must be constant-size, `Copy`, and implement the full
/// ring-operation surface. All operations are total; division is expressed
/// through [`FieldElement::inv`] (which panics on zero, mirroring field
/// semantics where `0` has no inverse).
pub trait FieldElement:
    Copy
    + Clone
    + Debug
    + Default
    + PartialEq
    + Eq
    + Hash
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
{
    /// Number of bytes in the canonical little-endian serialization.
    const ENCODED_LEN: usize;

    /// Largest `k` such that `2^k` divides `p - 1`; the field supports NTTs
    /// of size up to `2^k`.
    const TWO_ADICITY: u32;

    /// Number of bits of `p` (the field modulus).
    const MODULUS_BITS: u32;

    /// A human-readable name used in benchmark reports ("Field64" etc.).
    const NAME: &'static str;

    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Embeds an unsigned 64-bit integer into the field.
    fn from_u64(v: u64) -> Self;

    /// Embeds an unsigned 128-bit integer into the field (reduced mod `p`).
    fn from_u128(v: u128) -> Self;

    /// Embeds a signed integer: negative values map to `p - |v|`.
    fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Self::from_u64(v as u64)
        } else {
            -Self::from_u64(v.unsigned_abs())
        }
    }

    /// Returns the canonical residue as a `u128` if it fits, `None` otherwise.
    ///
    /// Aggregate decoding uses this: Prio sums stay far below the modulus by
    /// construction (the field is sized so sums never wrap), so decoders can
    /// safely read accumulated values back out as integers.
    fn try_to_u128(self) -> Option<u128>;

    /// Returns the canonical residue as a `u128`.
    ///
    /// # Panics
    /// Panics if the residue does not fit in 128 bits (only possible for
    /// fields wider than 128 bits).
    fn to_u128(self) -> u128 {
        self.try_to_u128()
            .expect("field element does not fit in u128")
    }

    /// Interprets the residue as a signed value in `(-p/2, p/2]`, returning
    /// `None` if its magnitude exceeds `i128`. Useful for decoding aggregates
    /// of signed data.
    fn to_i128(self) -> Option<i128>;

    /// Raises `self` to the power `exp`.
    fn pow(self, exp: u128) -> Self {
        let mut base = self;
        let mut acc = Self::one();
        let mut e = exp;
        while e != 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// One radix-2 NTT butterfly: returns `(u + w·v, u − w·v)`.
    ///
    /// This is the hook for lazy-reduction NTT arithmetic. The contract,
    /// which [`Field64`](crate::Field64) and [`Field32`](crate::Field32)
    /// exploit:
    ///
    /// * `u` and `v` may be **non-canonical representatives** produced by
    ///   earlier `butterfly` calls (for `Field64`/`Field32` that means any
    ///   value of the backing word, i.e. bounded by `2^64` resp. `2^32`,
    ///   both `< 2p`);
    /// * `w` must be canonical (twiddle factors always are);
    /// * the outputs may again be non-canonical, and carry no more than one
    ///   deferred conditional subtraction: callers must map every lane
    ///   through [`FieldElement::normalize`] once the transform finishes and
    ///   before any equality comparison or serialization.
    ///
    /// The default implementation performs fully reduced arithmetic, for
    /// which `normalize` is the identity.
    #[inline]
    fn butterfly(u: Self, v: Self, w: Self) -> (Self, Self) {
        let t = v * w;
        (u + t, u - t)
    }

    /// Maps a (possibly non-canonical) representative produced by
    /// [`FieldElement::butterfly`] back to the canonical residue. The
    /// identity for fields whose butterfly is fully reduced.
    #[inline]
    fn normalize(self) -> Self {
        self
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    fn inv(self) -> Self;

    /// A fixed generator of the multiplicative group `F_p^*`.
    fn generator() -> Self;

    /// A primitive `2^k`-th root of unity.
    ///
    /// # Panics
    /// Panics if `k > Self::TWO_ADICITY`.
    fn root_of_unity(k: u32) -> Self;

    /// Samples a uniformly random field element.
    fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self;

    /// Serializes the canonical residue as little-endian bytes into `out`.
    ///
    /// # Panics
    /// Panics if `out.len() != Self::ENCODED_LEN`.
    fn write_le_bytes(self, out: &mut [u8]);

    /// Deserializes a canonical little-endian residue; returns `None` if the
    /// value is not fully reduced (`>= p`) or `bytes` has the wrong length.
    fn read_le_bytes(bytes: &[u8]) -> Option<Self>;

    /// Serializes to an owned byte vector.
    fn to_bytes_vec(self) -> Vec<u8> {
        let mut v = vec![0u8; Self::ENCODED_LEN];
        self.write_le_bytes(&mut v);
        v
    }

    /// Derives a field element from a byte stream by rejection sampling.
    ///
    /// Used to expand PRG output into uniformly distributed field elements
    /// (Appendix I share compression). The closure yields successive blocks
    /// of `ENCODED_LEN` pseudo-random bytes; blocks encoding values `>= p`
    /// are rejected and the next block is drawn.
    fn from_byte_source<E>(mut next_block: impl FnMut(&mut [u8]) -> Result<(), E>) -> Result<Self, E> {
        // Stack buffer: this runs once per expanded share element, so a
        // heap allocation here multiplies across every submission a server
        // unpacks. 64 bytes covers every supported field width.
        debug_assert!(Self::ENCODED_LEN <= 64, "field encoding wider than 64 bytes");
        let mut buf = [0u8; 64];
        let buf = &mut buf[..Self::ENCODED_LEN];
        loop {
            next_block(buf)?;
            // Every supported modulus has its top bit set within the encoded
            // width, so the rejection rate is below 1/2 per block.
            if let Some(x) = Self::read_le_bytes(buf) {
                return Ok(x);
            }
        }
    }
}

/// Extension helpers for slices of field elements.
pub trait FieldSliceExt<F: FieldElement> {
    /// Adds `other` into `self` element-wise.
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn add_assign_slice(&mut self, other: &[F]);
    /// Subtracts `other` from `self` element-wise.
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn sub_assign_slice(&mut self, other: &[F]);
    /// Computes the inner product with `other`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    fn dot(&self, other: &[F]) -> F;
}

impl<F: FieldElement> FieldSliceExt<F> for [F] {
    fn add_assign_slice(&mut self, other: &[F]) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        for (a, b) in self.iter_mut().zip(other) {
            *a += *b;
        }
    }

    fn sub_assign_slice(&mut self, other: &[F]) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        for (a, b) in self.iter_mut().zip(other) {
            *a -= *b;
        }
    }

    fn dot(&self, other: &[F]) -> F {
        assert_eq!(self.len(), other.len(), "length mismatch");
        self.iter()
            .zip(other)
            .fold(F::zero(), |acc, (a, b)| acc + *a * *b)
    }
}

/// Implements the std operator traits for a field type in terms of inherent
/// `add_impl` / `sub_impl` / `mul_impl` / `neg_impl` methods.
macro_rules! impl_field_ops {
    ($t:ty) => {
        impl std::ops::Add for $t {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                self.add_impl(rhs)
            }
        }
        impl std::ops::Sub for $t {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                self.sub_impl(rhs)
            }
        }
        impl std::ops::Mul for $t {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                self.mul_impl(rhs)
            }
        }
        impl std::ops::Neg for $t {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                self.neg_impl()
            }
        }
        impl std::ops::AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = self.add_impl(rhs);
            }
        }
        impl std::ops::SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = self.sub_impl(rhs);
            }
        }
        impl std::ops::MulAssign for $t {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = self.mul_impl(rhs);
            }
        }
        impl std::iter::Sum for $t {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(<$t as $crate::FieldElement>::zero(), |a, b| a + b)
            }
        }
        impl std::iter::Product for $t {
            fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(<$t as $crate::FieldElement>::one(), |a, b| a * b)
            }
        }
    };
}
pub(crate) use impl_field_ops;
