//! Miller–Rabin primality testing for `u128` values.
//!
//! Used by the test suite to verify field moduli from scratch (no constants
//! are trusted without an in-repo check).

/// Computes `a·b mod m` without overflow via binary double-and-add.
fn mulmod(mut a: u128, mut b: u128, m: u128) -> u128 {
    debug_assert!(m > 0);
    a %= m;
    let mut acc: u128 = 0;
    while b > 0 {
        if b & 1 == 1 {
            acc = addmod(acc, a, m);
        }
        a = addmod(a, a, m);
        b >>= 1;
    }
    acc
}

#[inline]
fn addmod(a: u128, b: u128, m: u128) -> u128 {
    // a, b < m <= 2^127 would avoid overflow, but m may exceed 2^127;
    // use wrapping arithmetic with explicit overflow detection.
    let (s, over) = a.overflowing_add(b);
    if over || s >= m {
        s.wrapping_sub(m)
    } else {
        s
    }
}

fn powmod(mut base: u128, mut exp: u128, m: u128) -> u128 {
    let mut acc: u128 = 1 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, m);
        }
        base = mulmod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Miller–Rabin with a fixed base set; deterministic for all 64-bit inputs
/// and overwhelming confidence for the (non-adversarial) 128-bit moduli we
/// validate in tests.
pub fn is_prime_u128(n: u128) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'outer: for a in [
        2u128, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
    ] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r.saturating_sub(1) {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_and_composites() {
        let primes = [2u128, 3, 5, 7, 97, 65537, 1_000_003];
        let composites = [1u128, 4, 561, 1105, 6601, 1_000_001, 65536];
        for p in primes {
            assert!(is_prime_u128(p), "{p} should be prime");
        }
        for c in composites {
            assert!(!is_prime_u128(c), "{c} should be composite");
        }
    }

    #[test]
    fn mersenne_and_fermat() {
        assert!(is_prime_u128((1u128 << 61) - 1)); // M61
        assert!(!is_prime_u128((1u128 << 67) - 1)); // M67 is composite
        assert!(is_prime_u128((1u128 << 16) + 1)); // F4 = 65537
        assert!(!is_prime_u128((1u128 << 32) + 1)); // F5 is composite
    }

    #[test]
    fn mulmod_no_overflow() {
        let m = u128::MAX - 58; // arbitrary large odd modulus
        let a = u128::MAX - 100;
        let b = u128::MAX - 200;
        // (m - 100 + 58 - ... ) sanity: verify (a*b) mod m == ((a mod m)*(b mod m)) mod m
        // using the identity a = m - 42? Just check against small decomposition:
        // a ≡ -42-58+... — simpler: a mod m = a - 0 = a (a < m). Check commutativity
        // and a known small case.
        assert_eq!(mulmod(a, 1, m), a % m);
        assert_eq!(mulmod(a, b, m), mulmod(b, a, m));
        assert_eq!(mulmod(1 << 100, 1 << 27, u128::MAX), 1u128 << 127);
    }
}
