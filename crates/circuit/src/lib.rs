//! Arithmetic circuits for Prio `Valid` predicates.
//!
//! A Prio server must decide whether a client's secret-shared vector `x`
//! satisfies an arbitrary public predicate `Valid(x)` (Section 4 of the
//! paper). `Valid` is expressed as an *arithmetic circuit* over the Prio
//! field: addition, subtraction, multiplication-by-constant, and — the only
//! expensive kind — `×` gates between two non-constant wires. The SNIP proof
//! length and the client's proving time both scale with the number `M` of
//! `×` gates (Table 2), so AFE designers work hard to minimize it
//! (Section 5.2).
//!
//! Two evaluation modes matter:
//!
//! * [`Circuit::evaluate`]: the client evaluates the circuit in the clear to
//!   learn every wire value (SNIP Step 1);
//! * [`Circuit::evaluate_on_shares`]: each server walks the same circuit
//!   over *additive shares*, substituting the client-supplied share of
//!   `h(t)` for the output of the `t`-th `×` gate (SNIP Step 2). Affine
//!   gates commute with additive sharing, so this needs no communication.
//!
//! Following the paper's Appendix-I "circuit optimization", a circuit has a
//! *list* of assertion wires that must all evaluate to zero for the input to
//! be valid; the verifier checks a random linear combination of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod gadgets;

pub use builder::CircuitBuilder;

use prio_field::FieldElement;

/// Identifies a wire: inputs come first (`0..num_inputs`), then one wire per
/// operation in topological order.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct WireId(pub usize);

/// A circuit operation. Each op defines one new wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op<F: FieldElement> {
    /// A public constant.
    Const(F),
    /// Wire addition.
    Add(WireId, WireId),
    /// Wire subtraction.
    Sub(WireId, WireId),
    /// Multiplication by a public constant.
    MulConst(WireId, F),
    /// Addition of a public constant.
    AddConst(WireId, F),
    /// A true multiplication gate between two non-constant wires; the `t`-th
    /// such gate (in topological order) is bound to `h(t)` in the SNIP.
    Mul(WireId, WireId),
}

/// An arithmetic circuit representing a `Valid` predicate.
///
/// The input is valid iff *every* wire in `assertions` evaluates to zero.
#[derive(Clone, Debug)]
pub struct Circuit<F: FieldElement> {
    num_inputs: usize,
    ops: Vec<Op<F>>,
    /// Indices into `ops` of the `Mul` gates, in topological order.
    mul_gates: Vec<usize>,
    /// Wires that must all be zero for a valid input.
    assertions: Vec<WireId>,
}

/// The clear-text evaluation trace of a circuit: everything the SNIP prover
/// needs from Step 1.
#[derive(Clone, Debug)]
pub struct Trace<F: FieldElement> {
    /// Value of every wire (inputs then op outputs).
    pub wires: Vec<F>,
    /// Left inputs `u_t` of each `×` gate, `t = 1..=M` (index 0 unused by
    /// the caller, which prepends the random `u_0`).
    pub mul_left: Vec<F>,
    /// Right inputs `v_t` of each `×` gate.
    pub mul_right: Vec<F>,
    /// Values of the assertion wires.
    pub assertions: Vec<F>,
}

/// The share-side evaluation result at one server: shares of the `×`-gate
/// input wires and of the assertion wires.
#[derive(Clone, Debug, Default)]
pub struct ShareTrace<F: FieldElement> {
    /// Shares of `u_t` for `t = 1..=M`.
    pub mul_left: Vec<F>,
    /// Shares of `v_t` for `t = 1..=M`.
    pub mul_right: Vec<F>,
    /// Shares of the assertion wires.
    pub assertions: Vec<F>,
}

impl<F: FieldElement> Circuit<F> {
    /// Number of input wires.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number `M` of true multiplication gates.
    pub fn num_mul_gates(&self) -> usize {
        self.mul_gates.len()
    }

    /// Number of assertion (must-be-zero) wires.
    pub fn num_assertions(&self) -> usize {
        self.assertions.len()
    }

    /// Total number of wires (inputs + op outputs).
    pub fn num_wires(&self) -> usize {
        self.num_inputs + self.ops.len()
    }

    /// Evaluates the circuit in the clear (the client side, SNIP Step 1).
    ///
    /// # Panics
    /// Panics if `input.len() != self.num_inputs()`.
    pub fn evaluate(&self, input: &[F]) -> Trace<F> {
        assert_eq!(input.len(), self.num_inputs, "input arity mismatch");
        let mut wires = Vec::with_capacity(self.num_wires());
        wires.extend_from_slice(input);
        let mut mul_left = Vec::with_capacity(self.mul_gates.len());
        let mut mul_right = Vec::with_capacity(self.mul_gates.len());
        for op in &self.ops {
            let v = match *op {
                Op::Const(c) => c,
                Op::Add(a, b) => wires[a.0] + wires[b.0],
                Op::Sub(a, b) => wires[a.0] - wires[b.0],
                Op::MulConst(a, c) => wires[a.0] * c,
                Op::AddConst(a, c) => wires[a.0] + c,
                Op::Mul(a, b) => {
                    mul_left.push(wires[a.0]);
                    mul_right.push(wires[b.0]);
                    wires[a.0] * wires[b.0]
                }
            };
            wires.push(v);
        }
        let assertions = self.assertions.iter().map(|w| wires[w.0]).collect();
        Trace {
            wires,
            mul_left,
            mul_right,
            assertions,
        }
    }

    /// Returns true iff every assertion wire evaluates to zero on `input`.
    pub fn is_valid(&self, input: &[F]) -> bool {
        self.evaluate(input)
            .assertions
            .iter()
            .all(|&a| a == F::zero())
    }

    /// Evaluates the circuit over additive shares (the server side, SNIP
    /// Step 2).
    ///
    /// * `input_share` — this server's share of the client vector `x`;
    /// * `mul_output_shares` — this server's shares of the `×`-gate output
    ///   values, i.e. `[h(ω^t)]` for `t = 1..=M` (from the client's proof);
    /// * `is_leader` — exactly one server must pass `true`: additive sharing
    ///   of a public constant `c` is `c` at the leader and `0` elsewhere.
    ///
    /// Affine gates operate share-locally; `×`-gate outputs are *read from
    /// the proof* rather than computed, which is what makes server
    /// evaluation communication-free.
    ///
    /// # Panics
    /// Panics on arity mismatch of `input_share` or `mul_output_shares`.
    pub fn evaluate_on_shares(
        &self,
        input_share: &[F],
        mul_output_shares: &[F],
        is_leader: bool,
    ) -> ShareTrace<F> {
        let mut wires = Vec::with_capacity(self.num_wires());
        let mut trace = ShareTrace::default();
        self.evaluate_on_shares_into(input_share, mul_output_shares, is_leader, &mut wires, &mut trace);
        trace
    }

    /// Scratch-buffer variant of [`Circuit::evaluate_on_shares`]: clears
    /// and refills the caller's `wires` working buffer and `trace` output.
    /// The batched SNIP verifier evaluates one share trace per submission
    /// per server and reuses a single set of buffers across a whole batch;
    /// results are identical to the allocating variant.
    pub fn evaluate_on_shares_into(
        &self,
        input_share: &[F],
        mul_output_shares: &[F],
        is_leader: bool,
        wires: &mut Vec<F>,
        trace: &mut ShareTrace<F>,
    ) {
        assert_eq!(input_share.len(), self.num_inputs, "input arity mismatch");
        assert_eq!(
            mul_output_shares.len(),
            self.mul_gates.len(),
            "need one h share per multiplication gate"
        );
        let lead = |c: F| if is_leader { c } else { F::zero() };
        wires.clear();
        wires.extend_from_slice(input_share);
        trace.mul_left.clear();
        trace.mul_right.clear();
        trace.assertions.clear();
        let mut next_mul = 0usize;
        for op in &self.ops {
            let v = match *op {
                Op::Const(c) => lead(c),
                Op::Add(a, b) => wires[a.0] + wires[b.0],
                Op::Sub(a, b) => wires[a.0] - wires[b.0],
                Op::MulConst(a, c) => wires[a.0] * c,
                Op::AddConst(a, c) => wires[a.0] + lead(c),
                Op::Mul(a, b) => {
                    trace.mul_left.push(wires[a.0]);
                    trace.mul_right.push(wires[b.0]);
                    let out = mul_output_shares[next_mul];
                    next_mul += 1;
                    out
                }
            };
            wires.push(v);
        }
        trace
            .assertions
            .extend(self.assertions.iter().map(|w| wires[w.0]));
    }

    /// The assertion wires.
    pub fn assertion_wires(&self) -> &[WireId] {
        &self.assertions
    }

    /// The operation list (read-only, for inspection and cost models).
    pub fn ops(&self) -> &[Op<F>] {
        &self.ops
    }

    pub(crate) fn from_parts(
        num_inputs: usize,
        ops: Vec<Op<F>>,
        mul_gates: Vec<usize>,
        assertions: Vec<WireId>,
    ) -> Self {
        Circuit {
            num_inputs,
            ops,
            mul_gates,
            assertions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_field::{share_additive_vec, unshare_additive_vec, Field64};
    use rand::SeedableRng;

    fn bit_circuit(n: usize) -> Circuit<Field64> {
        // Valid iff every input is 0/1: assert x_i * (x_i - 1) == 0.
        let mut b = CircuitBuilder::<Field64>::new(n);
        for i in 0..n {
            let x = b.input(i);
            let xm1 = b.add_const(x, -Field64::one());
            let prod = b.mul(x, xm1);
            b.assert_zero(prod);
        }
        b.finish()
    }

    #[test]
    fn clear_evaluation() {
        let c = bit_circuit(4);
        assert_eq!(c.num_mul_gates(), 4);
        assert!(c.is_valid(&[0, 1, 1, 0].map(Field64::from_u64)));
        assert!(!c.is_valid(&[0, 2, 1, 0].map(Field64::from_u64)));
    }

    #[test]
    fn trace_records_mul_wires() {
        let c = bit_circuit(2);
        let t = c.evaluate(&[1, 0].map(Field64::from_u64));
        assert_eq!(t.mul_left, vec![Field64::from_u64(1), Field64::zero()]);
        assert_eq!(t.mul_right, vec![Field64::zero(), -Field64::one()]);
        assert_eq!(t.assertions, vec![Field64::zero(); 2]);
    }

    #[test]
    fn share_evaluation_reconstructs_clear_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let c = bit_circuit(5);
        let input: Vec<Field64> = [1u64, 0, 1, 1, 0].map(Field64::from_u64).to_vec();
        let trace = c.evaluate(&input);
        // Compute the true mul outputs and share everything.
        let mul_out: Vec<Field64> = trace
            .mul_left
            .iter()
            .zip(&trace.mul_right)
            .map(|(&a, &b)| a * b)
            .collect();
        let in_shares = share_additive_vec(&input, 3, &mut rng);
        let out_shares = share_additive_vec(&mul_out, 3, &mut rng);
        let traces: Vec<_> = (0..3)
            .map(|i| c.evaluate_on_shares(&in_shares[i], &out_shares[i], i == 0))
            .collect();
        // Reassembling share traces must match the clear trace.
        let lefts: Vec<Vec<Field64>> = traces.iter().map(|t| t.mul_left.clone()).collect();
        let rights: Vec<Vec<Field64>> = traces.iter().map(|t| t.mul_right.clone()).collect();
        let asserts: Vec<Vec<Field64>> = traces.iter().map(|t| t.assertions.clone()).collect();
        assert_eq!(unshare_additive_vec(&lefts), trace.mul_left);
        assert_eq!(unshare_additive_vec(&rights), trace.mul_right);
        assert_eq!(unshare_additive_vec(&asserts), trace.assertions);
    }

    #[test]
    fn share_evaluation_with_constants() {
        // Circuit with constants exercises the leader convention:
        // assert (x0 + 3) * (x1 - 3) - c == 0 with c = (x0+3)(x1-3).
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let mut b = CircuitBuilder::<Field64>::new(2);
        let x0 = b.input(0);
        let x1 = b.input(1);
        let a = b.add_const(x0, Field64::from_u64(3));
        let d = b.add_const(x1, -Field64::from_u64(3));
        let prod = b.mul(a, d);
        let expect = b.constant(Field64::from_u64((2 + 3) * (10 - 3)));
        let diff = b.sub(prod, expect);
        b.assert_zero(diff);
        let c = b.finish();

        let input = vec![Field64::from_u64(2), Field64::from_u64(10)];
        assert!(c.is_valid(&input));
        let trace = c.evaluate(&input);
        let mul_out: Vec<Field64> = trace
            .mul_left
            .iter()
            .zip(&trace.mul_right)
            .map(|(&a, &b)| a * b)
            .collect();
        let in_shares = share_additive_vec(&input, 2, &mut rng);
        let out_shares = share_additive_vec(&mul_out, 2, &mut rng);
        let t0 = c.evaluate_on_shares(&in_shares[0], &out_shares[0], true);
        let t1 = c.evaluate_on_shares(&in_shares[1], &out_shares[1], false);
        assert_eq!(t0.assertions[0] + t1.assertions[0], Field64::zero());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let c = bit_circuit(3);
        let _ = c.evaluate(&[Field64::zero()]);
    }
}
