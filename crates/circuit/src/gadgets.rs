//! Reusable circuit gadgets for building `Valid` predicates.
//!
//! These encode the recurring patterns of Section 5.2: bit checks, binary
//! decomposition consistency, one-hot checks, and squaring relations. Each
//! gadget documents its `×`-gate cost, since SNIP proof size is linear in
//! the total count (Table 2).

use crate::{CircuitBuilder, WireId};
use prio_field::FieldElement;

/// Asserts that `w ∈ {0, 1}` by requiring `w·(w − 1) = 0`.
///
/// Cost: 1 `×` gate.
pub fn assert_bit<F: FieldElement>(b: &mut CircuitBuilder<F>, w: WireId) {
    let wm1 = b.add_const(w, -F::one());
    let prod = b.mul(w, wm1);
    b.assert_zero(prod);
}

/// Asserts that every wire in `ws` is a bit.
///
/// Cost: `ws.len()` `×` gates.
pub fn assert_bits<F: FieldElement>(b: &mut CircuitBuilder<F>, ws: &[WireId]) {
    for &w in ws {
        assert_bit(b, w);
    }
}

/// Asserts that `value = Σ 2^i · bits[i]` — the binary-decomposition
/// consistency check of the integer-sum AFE ("the bits represent x").
///
/// Cost: 0 `×` gates (affine).
pub fn assert_binary_decomposition<F: FieldElement>(
    b: &mut CircuitBuilder<F>,
    value: WireId,
    bits: &[WireId],
) {
    let mut pow = F::one();
    let coeffs: Vec<F> = bits
        .iter()
        .map(|_| {
            let c = pow;
            pow = pow + pow;
            c
        })
        .collect();
    let recombined = b.weighted_sum(bits, &coeffs);
    b.assert_eq(value, recombined);
}

/// Asserts that `x` is a `bit_width`-bit integer, given its claimed bit
/// wires: all bits are 0/1 and they recombine to `x`.
///
/// Cost: `bit_width` `×` gates.
pub fn assert_range_by_bits<F: FieldElement>(
    b: &mut CircuitBuilder<F>,
    x: WireId,
    bits: &[WireId],
) {
    assert_bits(b, bits);
    assert_binary_decomposition(b, x, bits);
}

/// Asserts that the wires form a one-hot vector: each is a bit and they sum
/// to exactly one (the frequency-count AFE check of Section 5.2).
///
/// Cost: `ws.len()` `×` gates.
pub fn assert_one_hot<F: FieldElement>(b: &mut CircuitBuilder<F>, ws: &[WireId]) {
    assert_bits(b, ws);
    let total = b.sum(ws);
    b.assert_const(total, F::one());
}

/// Asserts `y = x²` (the variance AFE's consistency check).
///
/// Cost: 1 `×` gate.
pub fn assert_square<F: FieldElement>(b: &mut CircuitBuilder<F>, x: WireId, y: WireId) {
    let xx = b.mul(x, x);
    b.assert_eq(y, xx);
}

/// Asserts `z = x·y` (the regression AFE's cross-term check).
///
/// Cost: 1 `×` gate.
pub fn assert_product<F: FieldElement>(
    b: &mut CircuitBuilder<F>,
    x: WireId,
    y: WireId,
    z: WireId,
) {
    let xy = b.mul(x, y);
    b.assert_eq(z, xy);
}

/// Asserts that the unary ("threshold") encoding used by the min/max AFE is
/// monotone non-increasing: each wire is a bit and `w[i] ≥ w[i+1]`, enforced
/// as `(w[i+1])·(w[i+1] − w[i]) = 0` combined with bit checks.
///
/// Cost: `2·ws.len() − 1` `×` gates.
pub fn assert_monotone_bits<F: FieldElement>(b: &mut CircuitBuilder<F>, ws: &[WireId]) {
    assert_bits(b, ws);
    for pair in ws.windows(2) {
        let (hi, lo) = (pair[0], pair[1]);
        // If lo = 1 then hi must be 1: lo·(lo − hi) = 0.
        let diff = b.sub(lo, hi);
        let prod = b.mul(lo, diff);
        b.assert_zero(prod);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_field::Field64;

    fn f(vals: &[u64]) -> Vec<Field64> {
        vals.iter().map(|&v| Field64::from_u64(v)).collect()
    }

    #[test]
    fn bit_gadget() {
        let mut b = CircuitBuilder::<Field64>::new(1);
        let x = b.input(0);
        assert_bit(&mut b, x);
        let c = b.finish();
        assert!(c.is_valid(&f(&[0])));
        assert!(c.is_valid(&f(&[1])));
        assert!(!c.is_valid(&f(&[2])));
        assert_eq!(c.num_mul_gates(), 1);
    }

    #[test]
    fn binary_decomposition_gadget() {
        // Inputs: x, b0, b1, b2 — valid iff bits are 0/1 and x = b0+2b1+4b2.
        let mut b = CircuitBuilder::<Field64>::new(4);
        let x = b.input(0);
        let bits = [b.input(1), b.input(2), b.input(3)];
        assert_range_by_bits(&mut b, x, &bits);
        let c = b.finish();
        assert!(c.is_valid(&f(&[5, 1, 0, 1])));
        assert!(c.is_valid(&f(&[0, 0, 0, 0])));
        assert!(c.is_valid(&f(&[7, 1, 1, 1])));
        assert!(!c.is_valid(&f(&[5, 1, 0, 0]))); // bits say 1, x says 5
        assert!(!c.is_valid(&f(&[5, 5, 0, 1]))); // non-bit
        assert_eq!(c.num_mul_gates(), 3);
    }

    #[test]
    fn one_hot_gadget() {
        let mut b = CircuitBuilder::<Field64>::new(4);
        let ws = b.inputs();
        assert_one_hot(&mut b, &ws);
        let c = b.finish();
        assert!(c.is_valid(&f(&[0, 0, 1, 0])));
        assert!(!c.is_valid(&f(&[0, 0, 0, 0]))); // sums to 0
        assert!(!c.is_valid(&f(&[1, 0, 1, 0]))); // sums to 2
        assert!(!c.is_valid(&f(&[0, 0, 2, 0]))); // non-bit even though... 2 is not a bit
    }

    #[test]
    fn square_gadget() {
        let mut b = CircuitBuilder::<Field64>::new(2);
        let x = b.input(0);
        let y = b.input(1);
        assert_square(&mut b, x, y);
        let c = b.finish();
        assert!(c.is_valid(&f(&[9, 81])));
        assert!(!c.is_valid(&f(&[9, 80])));
    }

    #[test]
    fn product_gadget() {
        let mut b = CircuitBuilder::<Field64>::new(3);
        let (x, y, z) = (b.input(0), b.input(1), b.input(2));
        assert_product(&mut b, x, y, z);
        let c = b.finish();
        assert!(c.is_valid(&f(&[3, 7, 21])));
        assert!(!c.is_valid(&f(&[3, 7, 22])));
    }

    #[test]
    fn monotone_gadget() {
        let mut b = CircuitBuilder::<Field64>::new(4);
        let ws = b.inputs();
        assert_monotone_bits(&mut b, &ws);
        let c = b.finish();
        assert!(c.is_valid(&f(&[1, 1, 1, 0])));
        assert!(c.is_valid(&f(&[1, 0, 0, 0])));
        assert!(c.is_valid(&f(&[0, 0, 0, 0])));
        assert!(c.is_valid(&f(&[1, 1, 1, 1])));
        assert!(!c.is_valid(&f(&[0, 1, 1, 0]))); // rises after a fall
        assert!(!c.is_valid(&f(&[1, 0, 1, 0])));
        assert_eq!(c.num_mul_gates(), 4 + 3);
    }
}
