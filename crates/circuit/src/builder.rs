//! A builder for [`Circuit`]s.

use crate::{Circuit, Op, WireId};
use prio_field::FieldElement;

/// Incrementally constructs a [`Circuit`] in topological order.
///
/// ```
/// use prio_circuit::CircuitBuilder;
/// use prio_field::{Field64, FieldElement};
///
/// // Valid iff x0 is a bit: x0 * (x0 - 1) == 0.
/// let mut b = CircuitBuilder::<Field64>::new(1);
/// let x = b.input(0);
/// let xm1 = b.add_const(x, -Field64::one());
/// let prod = b.mul(x, xm1);
/// b.assert_zero(prod);
/// let circuit = b.finish();
/// assert!(circuit.is_valid(&[Field64::one()]));
/// assert!(!circuit.is_valid(&[Field64::from_u64(2)]));
/// ```
#[derive(Clone, Debug)]
pub struct CircuitBuilder<F: FieldElement> {
    num_inputs: usize,
    ops: Vec<Op<F>>,
    mul_gates: Vec<usize>,
    assertions: Vec<WireId>,
}

impl<F: FieldElement> CircuitBuilder<F> {
    /// Starts a circuit over `num_inputs` input wires.
    pub fn new(num_inputs: usize) -> Self {
        CircuitBuilder {
            num_inputs,
            ops: Vec::new(),
            mul_gates: Vec::new(),
            assertions: Vec::new(),
        }
    }

    fn push(&mut self, op: Op<F>) -> WireId {
        let id = WireId(self.num_inputs + self.ops.len());
        self.ops.push(op);
        id
    }

    fn check(&self, w: WireId) {
        assert!(
            w.0 < self.num_inputs + self.ops.len(),
            "wire {:?} does not exist yet",
            w
        );
    }

    /// References input wire `i`.
    ///
    /// # Panics
    /// Panics if `i >= num_inputs`.
    pub fn input(&self, i: usize) -> WireId {
        assert!(i < self.num_inputs, "input index out of range");
        WireId(i)
    }

    /// All input wires.
    pub fn inputs(&self) -> Vec<WireId> {
        (0..self.num_inputs).map(WireId).collect()
    }

    /// Introduces a public constant wire.
    pub fn constant(&mut self, c: F) -> WireId {
        self.push(Op::Const(c))
    }

    /// `a + b`.
    pub fn add(&mut self, a: WireId, b: WireId) -> WireId {
        self.check(a);
        self.check(b);
        self.push(Op::Add(a, b))
    }

    /// `a - b`.
    pub fn sub(&mut self, a: WireId, b: WireId) -> WireId {
        self.check(a);
        self.check(b);
        self.push(Op::Sub(a, b))
    }

    /// `a · c` for a public constant `c` (free: not a `×` gate).
    pub fn mul_const(&mut self, a: WireId, c: F) -> WireId {
        self.check(a);
        self.push(Op::MulConst(a, c))
    }

    /// `a + c` for a public constant `c`.
    pub fn add_const(&mut self, a: WireId, c: F) -> WireId {
        self.check(a);
        self.push(Op::AddConst(a, c))
    }

    /// `a · b` — a true multiplication gate, counted in `M`.
    pub fn mul(&mut self, a: WireId, b: WireId) -> WireId {
        self.check(a);
        self.check(b);
        let op_idx = self.ops.len();
        let id = self.push(Op::Mul(a, b));
        self.mul_gates.push(op_idx);
        id
    }

    /// Sums a list of wires (empty sum is the zero constant).
    pub fn sum(&mut self, wires: &[WireId]) -> WireId {
        match wires.split_first() {
            None => self.constant(F::zero()),
            Some((&first, rest)) => {
                let mut acc = first;
                for &w in rest {
                    acc = self.add(acc, w);
                }
                acc
            }
        }
    }

    /// Computes `Σ coeff_i · w_i` (an affine combination; free).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn weighted_sum(&mut self, wires: &[WireId], coeffs: &[F]) -> WireId {
        assert_eq!(wires.len(), coeffs.len(), "length mismatch");
        let terms: Vec<WireId> = wires
            .iter()
            .zip(coeffs)
            .map(|(&w, &c)| self.mul_const(w, c))
            .collect();
        self.sum(&terms)
    }

    /// Asserts that `w` must be zero for a valid input.
    pub fn assert_zero(&mut self, w: WireId) {
        self.check(w);
        self.assertions.push(w);
    }

    /// Asserts `a == b`.
    pub fn assert_eq(&mut self, a: WireId, b: WireId) {
        let d = self.sub(a, b);
        self.assert_zero(d);
    }

    /// Asserts `w == c` for a public constant.
    pub fn assert_const(&mut self, w: WireId, c: F) {
        let d = self.add_const(w, -c);
        self.assert_zero(d);
    }

    /// Number of `×` gates so far.
    pub fn num_mul_gates(&self) -> usize {
        self.mul_gates.len()
    }

    /// Finalizes the circuit.
    ///
    /// # Panics
    /// Panics if no assertion was registered (a `Valid` predicate that
    /// accepts everything should still assert a constant zero explicitly).
    pub fn finish(self) -> Circuit<F> {
        assert!(
            !self.assertions.is_empty(),
            "circuit has no assertions; call assert_zero at least once"
        );
        Circuit::from_parts(self.num_inputs, self.ops, self.mul_gates, self.assertions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prio_field::Field64;

    #[test]
    fn weighted_sum_matches_manual() {
        let mut b = CircuitBuilder::<Field64>::new(3);
        let wires = b.inputs();
        let coeffs = [1u64, 2, 4].map(Field64::from_u64);
        let ws = b.weighted_sum(&wires, &coeffs);
        b.assert_const(ws, Field64::from_u64(11));
        let c = b.finish();
        // 1*1 + 2*1 + 4*2 = 11
        assert!(c.is_valid(&[1, 1, 2].map(Field64::from_u64)));
        assert!(!c.is_valid(&[1, 1, 3].map(Field64::from_u64)));
        assert_eq!(c.num_mul_gates(), 0);
    }

    #[test]
    fn empty_sum_is_zero() {
        let mut b = CircuitBuilder::<Field64>::new(1);
        let z = b.sum(&[]);
        b.assert_zero(z);
        let c = b.finish();
        assert!(c.is_valid(&[Field64::from_u64(123)]));
    }

    #[test]
    #[should_panic(expected = "no assertions")]
    fn finish_requires_assertion() {
        let b = CircuitBuilder::<Field64>::new(1);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_bounds() {
        let b = CircuitBuilder::<Field64>::new(2);
        let _ = b.input(2);
    }

    #[test]
    fn assert_eq_works() {
        let mut b = CircuitBuilder::<Field64>::new(2);
        let x = b.input(0);
        let y = b.input(1);
        b.assert_eq(x, y);
        let c = b.finish();
        assert!(c.is_valid(&[5, 5].map(Field64::from_u64)));
        assert!(!c.is_valid(&[5, 6].map(Field64::from_u64)));
    }
}
