//! In-workspace shim for the subset of the `proptest` API used by this
//! workspace's tests.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the pieces the test suites rely on: the [`proptest!`] macro, [`any`],
//! range and [`prop::collection::vec`] strategies, [`Strategy::prop_map`],
//! and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a fixed-seed deterministic generator (no persisted failure
//! files, fully reproducible runs), and there is no shrinking — a failing
//! case panics immediately with the generated inputs visible in the
//! assertion message. Each `#[test]` body runs [`NUM_CASES`] times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Number of random cases each property test runs.
pub const NUM_CASES: u64 = 64;

/// Builds the deterministic generator for case `case` of the test named
/// `name`. Used by the [`proptest!`] macro; public so the macro expansion
/// can reach it.
pub fn case_rng(name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so every test
    // gets an independent but reproducible stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A source of random test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps this strategy's output through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value from `rng`.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize, bool);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing uniform values over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_range!(u32, u64, usize);

impl Strategy for Range<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut StdRng) -> u8 {
        rng.random_range(u32::from(self.start)..u32::from(self.end)) as u8
    }
}

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut StdRng) -> u128 {
        // Sample below the span via two 64-bit draws; spans above 2^64 only
        // appear in field tests where uniformity-mod-span is sufficient.
        let span = self.end - self.start;
        let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        self.start + wide % span
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Strategies over collections.
    pub mod collection {
        use super::super::{Strategy, StdRng};
        use rand::Rng;
        use std::ops::Range;

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.random_range(self.len.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy producing vectors of `element` with a length drawn from
        /// `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each function body runs [`NUM_CASES`] times with fresh inputs from a
/// deterministic per-test stream. No shrinking: a failure panics with the
/// first offending inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                for case in 0..$crate::NUM_CASES {
                    let mut prop_rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut prop_rng);)+
                    $body
                }
            }
        )+
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Expands to a `continue` of the case loop, so it is only usable directly
/// inside a [`proptest!`] body (as in real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// `assert!` under a proptest-compatible name (no shrinking, panics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name (no shrinking, panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name (no shrinking, panics).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_stay_in_bounds() {
        let mut rng = crate::case_rng("bounds", 0);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let xs = Strategy::generate(&prop::collection::vec(0u64..64, 2..15), &mut rng);
            assert!((2..15).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 64));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::case_rng("map", 1);
        let doubled = Strategy::generate(&(1u64..10).prop_map(|x| x * 2), &mut rng);
        assert!(doubled % 2 == 0 && (2..20).contains(&doubled));
    }

    #[test]
    fn case_rng_is_deterministic_per_name_and_case() {
        use rand::RngCore;
        assert_eq!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("t", 3).next_u64()
        );
        assert_ne!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("t", 4).next_u64()
        );
        assert_ne!(
            crate::case_rng("t", 3).next_u64(),
            crate::case_rng("u", 3).next_u64()
        );
    }

    proptest! {
        #[test]
        fn macro_generates_cases(a in any::<u32>(), b in 1u64..100) {
            prop_assert!((1..100).contains(&b));
            prop_assert_eq!(u64::from(a) + b, b + u64::from(a));
        }
    }
}
