//! In-workspace shim for the subset of the `bytes` crate API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the [`Buf`]/[`BufMut`] trait subset that `prio_net::wire` and
//! `prio_core::messages` rely on: little-endian integer accessors, slice
//! copies, and remaining-byte accounting. [`Buf`] is implemented for
//! `&[u8]` (decoding consumes the slice front) and [`BufMut`] for `Vec<u8>`
//! (encoding appends).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A cursor over readable bytes.
///
/// All `get_*` methods consume from the front and panic if fewer bytes remain
/// than requested — callers are expected to check [`Buf::remaining`] first,
/// which is exactly what the wire decoders do.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
    fn get_u8(&mut self) -> u8 {
        (**self).get_u8()
    }
    fn get_u32_le(&mut self) -> u32 {
        (**self).get_u32_le()
    }
    fn get_u64_le(&mut self) -> u64 {
        (**self).get_u64_le()
    }
}

/// A growable sink of writable bytes.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v)
    }
    fn put_u32_le(&mut self, v: u32) {
        (**self).put_u32_le(v)
    }
    fn put_u64_le(&mut self, v: u64) {
        (**self).put_u64_le(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers_and_slices() {
        let mut buf = Vec::new();
        buf.put_u8(0xab);
        buf.put_u32_le(0x1234_5678);
        buf.put_u64_le(0xdead_beef_cafe_f00d);
        buf.put_slice(b"xyz");
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u32_le(), 0x1234_5678);
        assert_eq!(r.get_u64_le(), 0xdead_beef_cafe_f00d);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    fn consuming_advances_the_slice_front() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        assert_eq!(r.get_u8(), 1);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r, &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
