//! In-workspace shim for the subset of the `rand` 0.9 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this crate provides a
//! drop-in replacement for the call sites the Prio reproduction actually
//! uses: [`Rng::random`], [`Rng::random_range`], [`RngCore::fill_bytes`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and the process-entropy
//! constructor [`rng()`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** (Blackman & Vigna),
//! a fast shift-register generator in the lineage of the four-tap GFSR
//! generators; state is expanded from a `u64` seed with SplitMix64. It is
//! deterministic, portable, and **not** cryptographically secure — all
//! cryptographic randomness in the workspace flows through `prio_crypto`'s
//! PRG, never through this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
///
/// Mirrors `rand`'s `StandardUniform` distribution for the primitive types
/// the workspace samples.
pub trait Random: Sized {
    /// Draws a uniform value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                // For types no wider than u64 this truncates a full u64,
                // which preserves uniformity.
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_uint!(u8, u16, u32, u64, usize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Lemire's multiply-shift reduction of a uniform u64; the
                // bias is < span / 2^64, far below what any test observes.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as $t;
                self.start + hi
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                // Widen to u128 so end == MAX doesn't overflow the span.
                let span = end as u128 - start as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as $t;
                start + hi
            }
        }
    )*};
}

impl_sample_range_uint!(u32, u64, usize);

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed; equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a fresh generator seeded from process entropy.
///
/// Mirrors `rand::rng()`. Each call yields an independently seeded
/// [`rngs::StdRng`]; the seed mixes the process's hash-table keys (randomized
/// per process by the OS) with a global call counter, so repeated calls in
/// one process never collide.
pub fn rng() -> rngs::StdRng {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};
    static CALLS: AtomicU64 = AtomicU64::new(0);
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write_u64(CALLS.fetch_add(1, Ordering::Relaxed));
    rngs::StdRng::seed_from_u64(hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33] {
            let mut rng = rngs::StdRng::seed_from_u64(7);
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            // A seeded refill must reproduce the same bytes.
            let mut rng2 = rngs::StdRng::seed_from_u64(7);
            let mut buf2 = vec![0u8; len];
            rng2.fill_bytes(&mut buf2);
            assert_eq!(buf, buf2);
        }
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5u32..=5);
            assert_eq!(w, 5);
            // Inclusive ranges ending at the type MAX must not overflow.
            let x = rng.random_range(u64::MAX - 1..=u64::MAX);
            assert!(x >= u64::MAX - 1);
            let _ = rng.random_range(0u64..=u64::MAX);
        }
    }

    #[test]
    fn random_samples_all_widths() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let _: u32 = rng.random();
        let _: u64 = rng.random();
        let v: u128 = rng.random();
        assert!(v > u128::from(u64::MAX) || v <= u128::from(u64::MAX));
        let _: bool = rng.random();
    }

    #[test]
    fn process_rng_yields_distinct_generators() {
        let mut a = rng();
        let mut b = rng();
        // Two draws from independently seeded generators; equality would be
        // a 2^-64 coincidence (or a broken counter).
        assert_ne!(
            (a.next_u64(), a.next_u64()),
            (b.next_u64(), b.next_u64())
        );
    }
}
