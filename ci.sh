#!/usr/bin/env bash
# Offline CI for the Prio reproduction workspace.
#
# The workspace has zero crates.io dependencies (see shims/), so everything
# runs with --offline and never touches the network. Bare cargo commands
# cover every member crate via the root manifest's default-members list.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> prio-bench --smoke"
cargo run --release --offline -p prio_bench -- --smoke
cargo run --release --offline -p prio_bench -- --check BENCH_prio.json

echo "CI OK"
