#!/usr/bin/env bash
# Offline CI for the Prio reproduction workspace.
#
# The workspace has zero crates.io dependencies (see shims/), so everything
# runs with --offline and never touches the network. Bare cargo commands
# cover every member crate via the root manifest's default-members list.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

# Deliberate re-run: `cargo test -q` above already covers this binary, but
# the TCP e2e is a named CI gate — if the real-socket path breaks, the log
# says so explicitly.
echo "==> e2e over the TCP transport"
cargo test -q --offline --test e2e_tcp

# Multi-process e2e: 3- and 5-server pipelines as real OS processes
# (prio-node × s + prio-submit), tampered submissions rejected, aggregates
# bit-identical to the in-process cluster, all children exiting cleanly.
# `cargo build -p prio_proc` pins the debug binaries the test spawns.
echo "==> multi-process e2e (prio_proc)"
cargo build --offline -p prio_proc
cargo test -q --offline --test e2e_proc

# Observability gate: scrapes live per-node registries from a real
# 3-process deployment over the GetMetrics control message and fails if
# the prio-obs exposition doesn't parse, if key counters are zero or
# disagree with NodeStats, or if a 10k garbage-frame flood is not fully
# accounted for in the drop counters (bounded stderr, exact counts).
echo "==> observability e2e (GetMetrics scrape + flood accounting)"
cargo test -q --offline --test e2e_obs

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

# Cross-validation of prio-lint's no-panic rule: clippy's own unwrap/expect
# lints over the network-facing crates, warn-level so the two checkers can
# disagree visibly without double-gating (prio-lint is the gate; every
# surviving warning corresponds to a reasoned lint:allow).
echo "==> cargo clippy (unwrap/expect cross-check: prio_net, prio_proc)"
cargo clippy --offline --no-deps -p prio_net -p prio_proc --lib --bins -- \
  -W clippy::unwrap_used -W clippy::expect_used

# The in-tree static-analysis pass (see crates/lint and ROADMAP.md
# "Invariants"): fails on any finding, on more than 15 inline allows, or if
# the full-workspace scan takes over 2 s — the lint must never become the
# slow step.
echo "==> prio-lint (workspace invariants)"
cargo build --release --offline -p prio_lint
cargo run --release --offline -q -p prio_lint -- --timing --max-allows 15 --max-millis 2000

echo "==> prio-bench --smoke (all backends)"
cargo run --release --offline -p prio_bench -- --smoke
cargo run --release --offline -p prio_bench -- --check BENCH_prio.json

# The plain --smoke above already runs the TCP scenarios; this slice exists
# to exercise the --backend CLI filter end-to-end (registry filtering, a
# tcp-only report, and its validation).
echo "==> prio-bench --smoke --backend tcp (real-socket slice)"
cargo run --release --offline -p prio_bench -- --smoke --backend tcp --out target/bench_tcp.json
cargo run --release --offline -p prio_bench -- --check target/bench_tcp.json

# Batched-verification slice: re-runs the batch × thread sweep in isolation
# and re-validates its scenario tags (threads/batch params, throughput
# metric) through prio-bench --check.
echo "==> prio-bench --smoke --filter fig5/batch_verify (batched verification slice)"
cargo run --release --offline -p prio_bench -- --smoke --filter fig5/batch_verify --out target/bench_batch_verify.json
cargo run --release --offline -p prio_bench -- --check target/bench_batch_verify.json

# Connection-churn slice: the reactor vs. thread-per-connection sweep in
# isolation (raw TCP endpoint, ≥ 1k concurrent short-lived connections at
# the top smoke point). The runner itself asserts byte accounting is
# identical across I/O modes and that the concurrency peak was reached;
# --check validates the report shape.
echo "==> prio-bench --smoke --filter fig4/conn_sweep (connection-churn slice)"
cargo run --release --offline -p prio_bench -- --smoke --filter fig4/conn_sweep --out target/bench_conn_sweep.json
cargo run --release --offline -p prio_bench -- --check target/bench_conn_sweep.json

# Multi-process slice: exercises the --backend proc filter end to end. The
# release prio-node/prio-submit binaries exist because the initial
# `cargo build --release` covers every default member; prio-bench locates
# them next to its own executable. This slice also runs with metrics
# enabled by construction: every proc scenario's `obs` block is built from
# GetMetrics scrapes of the node processes, so an unparseable exposition
# fails the run and --check rejects a document whose summaries lack p99.
echo "==> prio-bench --smoke --backend proc (multi-process slice)"
cargo run --release --offline -p prio_bench -- --smoke --backend proc --out target/bench_proc.json
cargo run --release --offline -p prio_bench -- --check target/bench_proc.json

# Deterministic chaos gate (ROADMAP.md "Robustness"). Three layers:
#   1. e2e_chaos: kill -9 a node mid-run and restart it; the batches that
#      completed must balance and the restarted deployment must finish.
#   2. The fig7 robustness slice twice, --check'd: every scenario's
#      exactness ledger (accepted + rejected + dropped == sent, typed
#      batch outcomes, fault/retry/dedup counters) validates.
#   3. Seeded-replay determinism: the two runs' --ledgers projections —
#      every robustness ledger in canonical compact form, wall-clock
#      excluded by construction — must be byte-identical. Same fault
#      seed, same faults, same ledger, on all three fabrics.
echo "==> chaos gate (e2e_chaos + seeded-replay ledger diff)"
cargo test -q --offline --test e2e_chaos
cargo run --release --offline -p prio_bench -- --smoke --filter fig7/robustness --out target/bench_chaos_a.json
cargo run --release --offline -p prio_bench -- --smoke --filter fig7/robustness --out target/bench_chaos_b.json
cargo run --release --offline -p prio_bench -- --check target/bench_chaos_a.json
cargo run --release --offline -p prio_bench -- --check target/bench_chaos_b.json
cargo run --release --offline -q -p prio_bench -- --ledgers target/bench_chaos_a.json > target/ledgers_a.txt
cargo run --release --offline -q -p prio_bench -- --ledgers target/bench_chaos_b.json > target/ledgers_b.txt
diff target/ledgers_a.txt target/ledgers_b.txt || {
  echo "chaos gate: seeded fault replay diverged (ledgers differ)" >&2
  exit 1
}

# Distributed-tracing gate (ROADMAP.md "Observability"). A traced smoke
# scenario runs on the sim fabric and on the multi-process fabric; each
# merged timeline is exported as Chrome trace-event JSON and re-parsed by
# prio-trace --check, which enforces the tracing invariants end to end:
# unique span ids, acyclic parent edges that all resolve, causal order
# (no recv before its send), and a critical-path compute/network split
# that sums to within the batch wall time. The traced fig4 rows in the
# main --smoke report above are additionally validated by
# prio-bench --check (trace block required on traced scenarios).
echo "==> trace gate (sim + proc Chrome-trace export, prio-trace --check)"
cargo run --release --offline -q -p prio_bench -- --trace "fig4/throughput/sum/s=3" --out target/trace_sim.json
cargo run --release --offline -q -p prio_bench -- --trace "fig4/throughput/sum/s=3/proc" --out target/trace_proc.json
cargo run --release --offline -q -p prio_bench --bin prio-trace -- --check target/trace_sim.json
cargo run --release --offline -q -p prio_bench --bin prio-trace -- --check target/trace_proc.json

echo "CI OK"
