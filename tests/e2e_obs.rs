//! End-to-end observability acceptance: the `GetMetrics` control-plane
//! scrape of a real multi-process deployment.
//!
//! Two scenarios:
//!
//! 1. **Parity** — a clean 3-process run's per-node metric snapshots must
//!    agree *exactly* with the [`NodeStats`] figures the control plane
//!    already reports (accepted, rejected, total bytes, frames dropped):
//!    two independent accounting paths, one truth.
//! 2. **Flood accounting across the process boundary** — 10 000 garbage
//!    frames injected at a node's public data socket are all accounted for
//!    in `server_frames_dropped_total{reason=unknown_sender}`, scraped
//!    live over `GetMetrics`, without disturbing the honest batch.

use prio_net::tcp::encode_frame;
use prio_net::NodeId;
use prio_obs::names;
use prio_proc::{AfeSpec, FieldSpec, ProcConfig, ProcDeployment};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const SUBMISSIONS: usize = 60;
const SEED: u64 = 0x0B5E;

fn launch(servers: usize) -> ProcDeployment {
    let cfg = ProcConfig::new(servers, AfeSpec::Sum(8), FieldSpec::F64, SUBMISSIONS)
        .with_tamper_permille(100) // 10% tampered → both reject reasons exercised
        .with_seed(SEED);
    ProcDeployment::launch(cfg).expect("cluster launches")
}

#[test]
fn scraped_metrics_match_node_stats_exactly() {
    let deployment = launch(3);
    let report = deployment.run().expect("pipeline completes");
    assert!(report.clean_exit);
    assert_eq!(report.node_metrics.len(), 3);

    for (i, (stats, snap)) in report.node_stats.iter().zip(&report.node_metrics).enumerate() {
        // Submission accounting: the registry's counters vs. the counts
        // the server handed the control plane.
        assert_eq!(
            snap.counter(names::SERVER_SUBMISSIONS_ACCEPTED, &[]),
            Some(stats.accepted),
            "node {i} accepted"
        );
        assert_eq!(
            snap.counter_sum(names::SERVER_SUBMISSIONS_REJECTED),
            stats.rejected,
            "node {i} rejected"
        );
        // 10% tampered: the SNIP-vote reject reason must be populated.
        assert!(
            snap.counter(names::SERVER_SUBMISSIONS_REJECTED, &[("reason", "verify")])
                .unwrap_or(0)
                > 0,
            "node {i} saw no verify rejections"
        );
        // Byte accounting: the fabric-level counter vs. the endpoint
        // counter NodeStats samples — a node process has exactly one
        // endpoint, so the two paths must agree to the byte.
        assert_eq!(
            snap.counter(names::NET_BYTES_SENT, &[]),
            Some(stats.total_bytes_sent),
            "node {i} bytes sent"
        );
        // A clean run drops nothing, and both paths say so.
        assert_eq!(stats.frames_dropped, 0, "node {i} dropped frames");
        assert_eq!(snap.counter_sum(names::SERVER_FRAMES_DROPPED), 0, "node {i}");
        // Phase latency histograms populated: one observation per batch
        // per phase, and the publish phase exactly once.
        for phase in ["unpack", "round1", "round2", "publish"] {
            let h = snap
                .histogram(names::SERVER_PHASE_US, &[("phase", phase)])
                .unwrap_or_else(|| panic!("node {i} lacks phase {phase}"));
            assert!(h.count > 0, "node {i} phase {phase} never observed");
        }
    }

    // The per-node counters also reconcile with the driver's totals.
    let accepted: u64 = report
        .node_metrics
        .iter()
        .map(|s| s.counter(names::SERVER_SUBMISSIONS_ACCEPTED, &[]).unwrap_or(0))
        .sum();
    assert_eq!(accepted, report.accepted * 3, "every node votes on every submission");
}

#[test]
fn garbage_flood_across_processes_is_fully_accounted() {
    const FLOOD: u64 = 10_000;
    let mut deployment = launch(3);
    let target = deployment.node_data_addrs()[0];

    // Inject the flood at the node's public data socket: well-framed
    // transport envelopes from a sender id outside the deployment, so they
    // traverse the TCP reader into the server loop's mailbox and must be
    // dropped there as unknown_sender.
    let mut attacker = TcpStream::connect(target).expect("node data socket reachable");
    let frame = encode_frame(NodeId(999), b"not a protocol message").expect("frame fits");
    let mut burst = Vec::with_capacity(frame.len() * 64);
    for chunk in 0..FLOOD / 64 {
        burst.clear();
        for _ in 0..64 {
            burst.extend_from_slice(&frame);
        }
        attacker.write_all(&burst).unwrap_or_else(|e| panic!("chunk {chunk}: {e}"));
    }
    for _ in 0..FLOOD % 64 {
        attacker.write_all(&frame).expect("tail frame");
    }
    attacker.flush().expect("flush");
    drop(attacker); // frame-boundary close: clean EOF at the reader

    // Live scrape until the transport has taken delivery of all 10 000
    // frames — GetMetrics is valid long before any batch runs, which is
    // exactly what makes it a monitoring primitive. Polling the *receive*
    // counter (incremented at the reader thread) rather than the drop
    // counter (incremented by the not-yet-started server loop) also
    // removes any cross-connection ordering race with the driver traffic.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = deployment.scrape_metrics(0).expect("live scrape");
        let received = snap.counter(names::NET_FRAMES_RECEIVED, &[]).unwrap_or(0);
        if received >= FLOOD {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {received}/{FLOOD} flood frames delivered within the deadline"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The honest workload must sail through the flooded node untouched.
    let report = deployment.run().expect("pipeline completes despite flood");
    assert!(report.clean_exit);

    // Every flood frame is accounted for, by reason, on the flooded node —
    // per the node's own report and per the scraped registry — and the
    // other nodes saw none of it.
    assert_eq!(report.node_stats[0].frames_dropped, FLOOD);
    let snap = &report.node_metrics[0];
    assert_eq!(
        snap.counter(names::SERVER_FRAMES_DROPPED, &[("reason", "unknown_sender")]),
        Some(FLOOD)
    );
    assert_eq!(snap.counter_sum(names::SERVER_FRAMES_DROPPED), FLOOD);
    for i in 1..3 {
        assert_eq!(report.node_stats[i].frames_dropped, 0, "node {i}");
        assert_eq!(report.node_metrics[i].counter_sum(names::SERVER_FRAMES_DROPPED), 0);
    }
}
