//! End-to-end acceptance for the readiness-driven TCP reactor
//! ([`prio_net::TcpIoMode::Reactor`]).
//!
//! Two scenarios:
//!
//! 1. **Cross-mode parity** — the same seeded workload over localhost TCP
//!    must produce bit-identical aggregates and byte accounting whether
//!    inbound I/O runs thread-per-connection or through the reactor: the
//!    I/O mode is an implementation detail, not a protocol change.
//! 2. **Flood accounting under the reactor** — the `tests/e2e_obs.rs`
//!    garbage-frame flood, replayed against a multi-process deployment
//!    whose nodes run reactor-mode data planes: all 10 000 frames must be
//!    dropped with exact per-reason counts while the honest batch sails
//!    through.

use prio_afe::sum::SumAfe;
use prio_core::{Client, ClientConfig, Deployment, DeploymentConfig, DeploymentReport};
use prio_field::Field64;
use prio_net::tcp::encode_frame;
use prio_net::{NodeId, TcpIoMode, TransportKind};
use prio_obs::names;
use prio_proc::{AfeSpec, FieldSpec, ProcConfig, ProcDeployment};
use rand::SeedableRng;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One full seeded pipeline over TCP under the given inbound I/O mode:
/// three servers, six honest submissions, aggregate checked.
fn run_tcp(io_mode: TcpIoMode) -> DeploymentReport {
    const S: usize = 3;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let afe = SumAfe::new(8);
    let cfg = DeploymentConfig::new(S)
        .with_transport(TransportKind::Tcp)
        .with_io_mode(io_mode);
    let mut deployment: Deployment<Field64> = Deployment::start(afe.clone(), cfg);
    let mut client = Client::new(afe, ClientConfig::new(S));
    let subs: Vec<_> = [1u64, 2, 3, 4, 5, 15]
        .iter()
        .map(|v| client.submit(v, &mut rng).unwrap())
        .collect();
    assert!(deployment.run_batch(&subs).iter().all(|&d| d));
    let report = deployment.finish();
    assert_eq!(report.accepted, 6);
    assert_eq!(report.sigma[0], 30);
    report
}

/// The reactor and the thread-per-connection driver deliver the same
/// frames to the same mailbox: every aggregate and every fig6 byte metric
/// must be bit-identical between the modes for the same seed.
#[test]
fn reactor_and_threaded_modes_report_identical_traffic() {
    let threaded = run_tcp(TcpIoMode::Threaded);
    let reactor = run_tcp(TcpIoMode::Reactor);
    assert_eq!(threaded.sigma, reactor.sigma);
    assert_eq!(threaded.accepted, reactor.accepted);
    assert_eq!(threaded.rejected, reactor.rejected);
    assert_eq!(threaded.server_bytes_sent, reactor.server_bytes_sent);
    assert_eq!(threaded.stats.total_bytes(), reactor.stats.total_bytes());
    assert_eq!(threaded.stats.total_msgs(), reactor.stats.total_msgs());
    assert_eq!(
        threaded.leader_vs_non_leader_bytes(),
        reactor.leader_vs_non_leader_bytes()
    );
}

/// The e2e_obs garbage flood, pointed at a reactor-mode node: 10 000
/// well-framed envelopes from an unknown sender traverse the reactor's
/// per-connection decoder into the server loop's mailbox and are dropped
/// there with exact accounting, without disturbing the honest batch.
#[test]
fn garbage_flood_against_the_reactor_is_fully_accounted() {
    const FLOOD: u64 = 10_000;
    const SUBMISSIONS: usize = 60;
    let cfg = ProcConfig::new(3, AfeSpec::Sum(8), FieldSpec::F64, SUBMISSIONS)
        .with_tamper_permille(100)
        .with_seed(0x0B5E)
        .with_io_mode(TcpIoMode::Reactor);
    let mut deployment = ProcDeployment::launch(cfg).expect("cluster launches");
    let target = deployment.node_data_addrs()[0];

    let mut attacker = TcpStream::connect(target).expect("node data socket reachable");
    let frame = encode_frame(NodeId(999), b"not a protocol message").expect("frame fits");
    let mut burst = Vec::with_capacity(frame.len() * 64);
    for chunk in 0..FLOOD / 64 {
        burst.clear();
        for _ in 0..64 {
            burst.extend_from_slice(&frame);
        }
        attacker.write_all(&burst).unwrap_or_else(|e| panic!("chunk {chunk}: {e}"));
    }
    for _ in 0..FLOOD % 64 {
        attacker.write_all(&frame).expect("tail frame");
    }
    attacker.flush().expect("flush");
    drop(attacker); // frame-boundary close: clean EOF at the decoder

    // Scrape until the reactor has delivered the full flood, then confirm
    // its loop really was the path that carried it: the reactor gauges and
    // counters must be live in the node's registry.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = deployment.scrape_metrics(0).expect("live scrape");
        let received = snap.counter(names::NET_FRAMES_RECEIVED, &[]).unwrap_or(0);
        if received >= FLOOD {
            assert!(
                snap.counter(names::NET_REACTOR_ACCEPTED, &[]).unwrap_or(0) > 0,
                "flood was delivered but the reactor accepted nothing"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {received}/{FLOOD} flood frames delivered within the deadline"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let report = deployment.run().expect("pipeline completes despite flood");
    assert!(report.clean_exit);

    assert_eq!(report.node_stats[0].frames_dropped, FLOOD);
    let snap = &report.node_metrics[0];
    assert_eq!(
        snap.counter(names::SERVER_FRAMES_DROPPED, &[("reason", "unknown_sender")]),
        Some(FLOOD)
    );
    assert_eq!(snap.counter_sum(names::SERVER_FRAMES_DROPPED), FLOOD);
    for i in 1..3 {
        assert_eq!(report.node_stats[i].frames_dropped, 0, "node {i}");
        assert_eq!(report.node_metrics[i].counter_sum(names::SERVER_FRAMES_DROPPED), 0);
    }
}
