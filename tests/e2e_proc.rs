//! End-to-end test of the multi-process deployment (`prio_proc`): the
//! acceptance scenario for the process fabric.
//!
//! A 3-server and a 5-server Prio pipeline each run as `s + 1` real OS
//! processes (`s` × `prio-node` + 1 × `prio-submit`, orchestrated from
//! this test process): 200 submissions with a 10% tamper fraction are
//! uploaded over real sockets, the tampered subset is rejected, every
//! child exits cleanly, and the aggregate matches an in-process
//! [`Cluster`] run of the *same* submissions bit for bit.

use prio_afe::sum::SumAfe;
use prio_core::Cluster;
use prio_field::{Field64, FieldElement};
use prio_proc::spec::{encode_submissions, is_tampered, tampered_count};
use prio_proc::{AfeSpec, FieldSpec, ProcConfig, ProcDeployment};
use prio_snip::{HForm, VerifyMode};

const SUBMISSIONS: usize = 200;
const TAMPER_PERMILLE: u32 = 100; // 10% → 20 tampered
const SEED: u64 = 0xE2E0;

/// In-process reference over the identical submission set.
fn cluster_reference(servers: usize) -> (u64, u64, Vec<u64>) {
    let subs = encode_submissions::<Field64>(
        AfeSpec::Sum(8),
        servers,
        HForm::PointValue,
        SUBMISSIONS,
        SEED,
        TAMPER_PERMILLE,
    )
    .unwrap();
    let mut cluster: Cluster<Field64, _> =
        Cluster::new(SumAfe::new(8), servers, VerifyMode::FixedPoint);
    for (j, sub) in subs.iter().enumerate() {
        let accepted = cluster.process(sub);
        assert_eq!(accepted, !is_tampered(j, TAMPER_PERMILLE), "submission {j}");
    }
    let sigma = cluster
        .aggregate()
        .iter()
        .map(|v| v.try_to_u128().map(|x| x as u64).unwrap_or(u64::MAX))
        .collect();
    (cluster.accepted(), cluster.rejected(), sigma)
}

fn run_proc_pipeline(servers: usize) {
    let cfg = ProcConfig::new(servers, AfeSpec::Sum(8), FieldSpec::F64, SUBMISSIONS)
        .with_tamper_permille(TAMPER_PERMILLE)
        .with_batch(50) // four protocol batches
        .with_seed(SEED);
    let deployment = ProcDeployment::launch(cfg).expect("cluster launches");
    let report = deployment.run().expect("pipeline completes");

    let tampered = tampered_count(SUBMISSIONS, TAMPER_PERMILLE) as u64;
    assert_eq!(tampered, 20);
    assert_eq!(report.accepted, SUBMISSIONS as u64 - tampered, "s={servers}");
    assert_eq!(report.rejected, tampered, "s={servers}");
    assert_eq!(report.batch_wall.len(), 4);

    // Bit-for-bit against the in-process cluster.
    let (ref_acc, ref_rej, ref_sigma) = cluster_reference(servers);
    assert_eq!(report.accepted, ref_acc);
    assert_eq!(report.rejected, ref_rej);
    assert_eq!(report.sigma, ref_sigma, "s={servers} aggregate diverged");

    // Process hygiene: every node served, finished its loop through an
    // orderly shutdown, and exited 0 — no zombies, no forced kills.
    assert!(report.clean_exit, "s={servers}: a child exited uncleanly");
    assert_eq!(report.node_stats.len(), servers);
    for (i, stats) in report.node_stats.iter().enumerate() {
        assert!(stats.clean, "node {i} loop did not shut down cleanly");
        assert_eq!(stats.accepted + stats.rejected, SUBMISSIONS as u64);
        assert_eq!(stats.accepted, ref_acc, "node {i} accept count");
        assert!(stats.verify_bytes_sent > 0, "node {i} sent nothing");
    }

    // Figure-6 cross-process sanity: the leader out-transmits every
    // non-leader during verification, and upload traffic flowed.
    let (leader, non_leader) = report.leader_vs_non_leader_bytes();
    assert!(leader > non_leader, "s={servers}: {leader} vs {non_leader}");
    assert!(report.upload_bytes as usize > SUBMISSIONS * 100);
}

#[test]
fn three_server_pipeline_as_real_processes() {
    run_proc_pipeline(3);
}

#[test]
fn five_server_pipeline_as_real_processes() {
    run_proc_pipeline(5);
}

/// The Figure-6 leader asymmetry grows with the server count exactly as on
/// the in-process fabrics: a non-leader's verification traffic is
/// independent of `s`, the leader's scales with `s − 1`.
#[test]
fn leader_asymmetry_scales_across_processes() {
    let run = |servers: usize| {
        let cfg = ProcConfig::new(servers, AfeSpec::Sum(8), FieldSpec::F64, 24).with_seed(7);
        ProcDeployment::launch(cfg)
            .expect("cluster launches")
            .run()
            .expect("pipeline completes")
    };
    let s3 = run(3);
    let s5 = run(5);
    let ratio = |r: &prio_proc::ProcReport| {
        let (leader, non_leader) = r.leader_vs_non_leader_bytes();
        leader as f64 / non_leader.max(1) as f64
    };
    // ≈ (s−1)·(V+D) / 2V: ~1.04 at s=3, ~2.08 at s=5.
    assert!(ratio(&s3) > 1.0, "s=3 ratio {}", ratio(&s3));
    assert!(
        ratio(&s5) > ratio(&s3) * 1.5,
        "s=5 ratio {} should dwarf s=3 ratio {}",
        ratio(&s5),
        ratio(&s3)
    );
    // Non-leader verification bytes per submission are s-independent.
    let non_leader_bytes = |r: &prio_proc::ProcReport| r.server_verify_bytes()[1];
    assert_eq!(non_leader_bytes(&s3), non_leader_bytes(&s5));
}
