//! End-to-end test of the full sum-AFE pipeline over the real-socket TCP
//! transport, mirroring `tests/e2e_deployment.rs`: three servers, exact
//! accept/reject counts, a tampered SNIP rejected, and byte accounting
//! that matches the sim fabric.

use prio_afe::sum::SumAfe;
use prio_core::client::ShareBlob;
use prio_core::{Client, ClientConfig, Deployment, DeploymentConfig};
use prio_field::{Field64, FieldElement};
use prio_net::TransportKind;
use rand::SeedableRng;

/// Three servers on localhost TCP sockets: every protocol message crosses
/// the kernel loopback stack, and the pipeline still produces exact
/// accept/reject counts and the correct aggregate.
#[test]
fn three_servers_over_tcp_accept_reject_and_aggregate() {
    const S: usize = 3;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let afe = SumAfe::new(8);
    let cfg = DeploymentConfig::new(S).with_transport(TransportKind::Tcp);
    let mut deployment: Deployment<Field64> = Deployment::start(afe.clone(), cfg);
    let mut client = Client::new(afe, ClientConfig::new(S));

    // Batch 1: six honest submissions.
    let honest: Vec<_> = (0..6u64)
        .map(|v| client.submit(&(v * 10), &mut rng).unwrap())
        .collect();
    assert!(deployment.run_batch(&honest).iter().all(|&d| d));

    // Batch 2: three honest plus one with a tampered SNIP share — the
    // Section-1 ballot-stuffing attack, which the servers must catch
    // jointly over the real wire.
    let mut second: Vec<_> = (0..3u64)
        .map(|v| client.submit(&v, &mut rng).unwrap())
        .collect();
    let mut bad = client.submit(&1, &mut rng).unwrap();
    let ShareBlob::Explicit(v) = &mut bad.blobs[S - 1] else {
        panic!("last blob should be explicit");
    };
    v[0] += Field64::from_u64(9999);
    second.push(bad);
    let decisions = deployment.run_batch(&second);
    assert_eq!(decisions, vec![true, true, true, false]);

    let report = deployment.finish();
    assert_eq!(report.accepted, 9);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.sigma[0], (0..6).map(|v| v * 10).sum::<u64>() + 3);

    // Per-batch wall times and per-server byte counts are recorded exactly
    // as on the sim fabric.
    assert_eq!(report.batch_wall.len(), 2);
    assert_eq!(report.server_bytes_sent.len(), S);
    assert!(report.server_bytes_sent.iter().all(|&b| b > 0));
    let (leader, non_leader) = report.leader_vs_non_leader_bytes();
    assert!(
        leader > non_leader,
        "leader {leader} must out-transmit non-leaders {non_leader}"
    );
}

/// The byte accounting over TCP matches the sim fabric exactly for the
/// same workload: both count payload bytes on successful sends, and the
/// protocol is deterministic given the RNG seed.
#[test]
fn tcp_and_sim_report_identical_traffic() {
    let run = |transport: TransportKind| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let afe = SumAfe::new(8);
        let cfg = DeploymentConfig::new(3).with_transport(transport);
        let mut deployment: Deployment<Field64> = Deployment::start(afe.clone(), cfg);
        let mut client = Client::new(afe, ClientConfig::new(3));
        let subs: Vec<_> = (0..5u64)
            .map(|v| client.submit(&v, &mut rng).unwrap())
            .collect();
        assert!(deployment.run_batch(&subs).iter().all(|&d| d));
        deployment.finish()
    };
    let sim = run(TransportKind::Sim);
    let tcp = run(TransportKind::Tcp);
    assert_eq!(sim.server_bytes_sent, tcp.server_bytes_sent);
    assert_eq!(sim.stats.total_bytes(), tcp.stats.total_bytes());
    assert_eq!(sim.stats.total_msgs(), tcp.stats.total_msgs());
    assert_eq!(sim.sigma, tcp.sigma);
}

/// WAN latency modelling works on the TCP fabric too: each message send
/// sleeps for the configured link latency, so a batch cannot complete
/// faster than the protocol's critical path allows.
#[test]
fn tcp_latency_slows_batches() {
    let latency = std::time::Duration::from_micros(200);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let afe = SumAfe::new(4);
    let cfg = DeploymentConfig::new(2)
        .with_transport(TransportKind::Tcp)
        .with_latency(latency);
    let mut deployment: Deployment<Field64> = Deployment::start(afe.clone(), cfg);
    let mut client = Client::new(afe, ClientConfig::new(2));
    let subs: Vec<_> = (0..2u64)
        .map(|v| client.submit(&v, &mut rng).unwrap())
        .collect();
    assert!(deployment.run_batch(&subs).iter().all(|&d| d));
    let report = deployment.finish();
    assert_eq!(report.accepted, 2);
    // The batch spans at least upload → round 1 → combined → round 2 →
    // decisions, each behind one latency sleep.
    assert!(
        report.batch_wall[0] >= latency,
        "batch wall {:?} below the link latency",
        report.batch_wall[0]
    );
}
