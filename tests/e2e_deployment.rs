//! End-to-end tests for the threaded deployment under WAN latency, and for
//! the bench harness's report pipeline on real measured data.

use prio_afe::sum::SumAfe;
use prio_bench::exec::run_scenario;
use prio_bench::json::Json;
use prio_bench::report::{build_document, validate_document};
use prio_bench::scenario::{registry, Group, Mode};
use prio_core::client::ShareBlob;
use prio_core::{Client, ClientConfig, Deployment, DeploymentConfig};
use prio_field::{Field64, FieldElement};
use rand::SeedableRng;
use std::time::Duration;

/// Five servers over a latency-bearing fabric: accept/reject counts are
/// exact, per-batch wall times reflect the link latency, and the leader
/// transmits measurably more than any non-leader (the Figure-6 asymmetry).
#[test]
fn five_servers_with_latency_accept_reject_and_bandwidth() {
    const S: usize = 5;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let afe = SumAfe::new(8);
    let cfg = DeploymentConfig::new(S).with_latency(Duration::from_micros(200));
    let mut deployment: Deployment<Field64> = Deployment::start(afe.clone(), cfg);
    let mut client = Client::new(afe, ClientConfig::new(S));

    // Two batches: 6 honest submissions, then 3 honest + 1 tampered.
    let honest: Vec<_> = (0..6u64)
        .map(|v| client.submit(&(v * 10), &mut rng).unwrap())
        .collect();
    assert!(deployment.run_batch(&honest).iter().all(|&d| d));

    let mut second: Vec<_> = (0..3u64)
        .map(|v| client.submit(&v, &mut rng).unwrap())
        .collect();
    let mut bad = client.submit(&1, &mut rng).unwrap();
    let ShareBlob::Explicit(v) = &mut bad.blobs[S - 1] else {
        panic!("last blob should be explicit");
    };
    v[0] += Field64::from_u64(9999);
    second.push(bad);
    let decisions = deployment.run_batch(&second);
    assert_eq!(decisions, vec![true, true, true, false]);

    let report = deployment.finish();
    assert_eq!(report.accepted, 9);
    assert_eq!(report.rejected, 1);
    assert_eq!(report.sigma[0], (0..6).map(|v| v * 10).sum::<u64>() + 3);

    // Per-batch wall times: one entry per batch, each at least the link
    // latency (every message delivery sleeps 200 µs).
    assert_eq!(report.batch_wall.len(), 2);
    for wall in &report.batch_wall {
        assert!(*wall >= Duration::from_micros(200), "{wall:?}");
    }

    // Leader-vs-non-leader bandwidth: with s = 5 the leader redistributes
    // the combined round-1 and decision messages to 4 peers, so it must
    // send well over what any single non-leader sends.
    assert_eq!(report.server_bytes_sent.len(), S);
    let (leader, non_leader) = report.leader_vs_non_leader_bytes();
    assert!(
        leader as f64 > 1.5 * non_leader as f64,
        "leader {leader} vs non-leader {non_leader}"
    );
}

/// A real measured bandwidth scenario survives the serialize → parse →
/// validate round trip, and its metrics are intact afterwards.
#[test]
fn bench_report_roundtrips_with_real_measurements() {
    let sc = registry(Mode::Smoke)
        .into_iter()
        .find(|sc| sc.group == Group::Bandwidth)
        .expect("smoke registry has a bandwidth scenario");
    let record = run_scenario(&sc);
    let doc = build_document(Mode::Smoke, std::slice::from_ref(&record), Duration::from_millis(1));

    let text = doc.to_pretty();
    let parsed = Json::parse(&text).expect("emitted JSON parses");
    assert_eq!(parsed, doc);
    validate_document(&parsed).expect("emitted JSON validates");

    let result = &parsed.get("results").and_then(Json::as_arr).unwrap()[0];
    assert_eq!(result.get("name").and_then(Json::as_str), Some(sc.name.as_str()));
    let ratio = result
        .get("metrics")
        .and_then(|m| m.get("leader_over_non_leader"))
        .and_then(Json::as_num)
        .expect("bandwidth metrics carry the leader ratio");
    assert!(ratio > 0.0);
}
