//! Workspace-level end-to-end test: the full Prio pipeline over the sum AFE.
//!
//! Exercises every layer at once — `prio_afe` client encoding, `prio_snip`
//! proof generation and two-round verification, `prio_core` accumulation and
//! publishing — the way a deployment composes them, rather than through any
//! single crate's unit tests.

use prio_afe::sum::SumAfe;
use prio_core::{Client, ClientConfig, Cluster, ShareBlob};
use prio_field::{Field64, FieldElement};
use prio_snip::VerifyMode;
use rand::SeedableRng;

#[test]
fn sum_pipeline_aggregates_honest_and_rejects_malformed() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xe2e);
    let bits = 10;
    let num_servers = 3;
    let mut cluster: Cluster<Field64, _> = Cluster::new(
        SumAfe::new(bits),
        num_servers,
        VerifyMode::FixedPoint,
    );
    let mut client = Client::new(SumAfe::new(bits), ClientConfig::new(num_servers));

    // Phase 1: honest clients. Client encode → SNIP verify → aggregate.
    let values = [0u64, 1, 512, 1023, 77, 300];
    for v in values {
        let sub = client.submit(&v, &mut rng).expect("encoding in range");
        assert!(cluster.process(&sub), "honest submission must be accepted");
    }

    // Phase 2: a cheater tampers with its explicit share after proving
    // (the ballot-stuffing attack of Section 1). The SNIP must catch it.
    let mut cheat = client.submit(&1, &mut rng).unwrap();
    match &mut cheat.blobs[num_servers - 1] {
        ShareBlob::Explicit(share) => share[0] += Field64::from_u64(5000),
        ShareBlob::Seed(_) => panic!("last blob should be the explicit share"),
    }
    assert!(
        !cluster.process(&cheat),
        "tampered submission must be rejected"
    );

    // Phase 3: a structurally malformed blob (wrong length) is rejected
    // locally, without even entering SNIP verification.
    let mut garbled = client.submit(&2, &mut rng).unwrap();
    garbled.blobs[0] = ShareBlob::Explicit(vec![Field64::zero(); 1]);
    assert!(
        !cluster.process(&garbled),
        "malformed submission must be rejected"
    );

    // Phase 4: publish. Only the honest values appear in the statistic.
    assert_eq!(cluster.accepted(), values.len() as u64);
    assert_eq!(cluster.rejected(), 2);
    let total = cluster.decode().expect("aggregate decodes");
    assert_eq!(total, values.iter().map(|&v| u128::from(v)).sum::<u128>());

    // The verification protocol actually moved bytes between servers, and
    // non-leaders all sent the same (constant-size) traffic.
    let sent = cluster.verification_bytes_sent();
    assert!(sent[0] > 0, "leader must broadcast");
    assert!(sent[1] > 0, "non-leaders must reply");
    assert_eq!(sent[1], sent[2], "star topology is symmetric");
}
