//! End-to-end tracing acceptance: the distributed per-batch timeline
//! across real OS processes.
//!
//! A 3-server multi-process deployment runs with tracing on: every
//! `prio-node` and the `prio-submit` driver record spans into their own
//! bounded ring, the orchestrator scrapes them over the `GetTraces`
//! control op (driver spans ride the `PRIO-TRACE` stdout line), and the
//! clock-offset estimates from the spawn/handshake windows merge them into
//! one causally ordered timeline. The test asserts the ISSUE's proc-side
//! guarantees: spans from all nodes, no orphan `gather-wait` parent edges
//! (each one names a span the sending node really recorded — i.e. a frame
//! that was actually sent), and a Chrome trace-event export that passes
//! the same validation `prio-trace --check` runs in CI.

use prio_obs::trace::{check_chrome_json, critical_path, to_chrome_json, SpanKind, SpanRecord};
use prio_proc::{AfeSpec, FieldSpec, ProcConfig, ProcDeployment};
use std::collections::{BTreeSet, HashMap};

#[test]
fn traced_proc_run_yields_a_causal_cross_node_timeline() {
    let servers = 3;
    let cfg = ProcConfig::new(servers, AfeSpec::Sum(8), FieldSpec::F64, 24)
        .with_batch(12) // two protocol batches
        .with_seed(0x7ACE)
        .with_trace();
    let report = ProcDeployment::launch(cfg)
        .expect("cluster launches")
        .run()
        .expect("pipeline completes");
    assert_eq!(report.accepted, 24);
    assert_eq!(
        report.node_traces.len(),
        servers + 1,
        "every node plus the driver contributes a per-node trace"
    );
    let merged = report.merged_trace().expect("traced run yields a timeline");
    assert_eq!(merged.dropped, 0, "nothing overflowed the span rings");

    // Spans from every process: servers 0..s plus the driver as node s.
    let nodes: BTreeSet<u64> = merged.spans.iter().map(|s| s.node).collect();
    assert_eq!(nodes, (0..=servers as u64).collect::<BTreeSet<u64>>());

    // No orphan gather-wait spans: every parent edge must resolve to a
    // span some node actually recorded, in the same batch — the recv side
    // of a frame that was really sent. Cross-node edges are the whole
    // point, so at least one must survive the merge.
    let by_id: HashMap<u64, &SpanRecord> = merged.spans.iter().map(|s| (s.id, s)).collect();
    let mut cross_node_edges = 0;
    for span in merged.spans.iter().filter(|s| s.kind == SpanKind::GatherWait) {
        let parent = by_id.get(&span.parent).unwrap_or_else(|| {
            panic!(
                "orphan gather-wait span (node {}, phase {:?}): parent {} was never recorded",
                span.node, span.phase, span.parent
            )
        });
        assert_eq!(
            parent.trace, span.trace,
            "gather-wait parent edge crosses batch boundaries"
        );
        if parent.node != span.node {
            cross_node_edges += 1;
        }
    }
    assert!(cross_node_edges > 0, "no cross-node parent edge survived the merge");

    // The Chrome export passes the CI trace gate's validation, which
    // includes causal order: no span starts before the parent it waited on.
    let chrome = to_chrome_json(&merged);
    let summary = check_chrome_json(&chrome).expect("export validates");
    assert_eq!(summary.nodes, servers as u64 + 1);
    assert_eq!(summary.batches, 2);
    assert_eq!(summary.events, merged.spans.len() as u64);

    // Critical-path attribution covers both batches with a non-trivial
    // compute/network split.
    let cp = critical_path(&merged.spans);
    assert_eq!(cp.batches, 2);
    assert!(cp.compute_us > 0, "no compute attributed");
    assert!(cp.batch_wall_us >= cp.compute_us.min(cp.batch_wall_us));
    assert_eq!(cp.per_node.len(), servers + 1);
}

#[test]
fn untraced_proc_run_scrapes_no_traces() {
    let cfg = ProcConfig::new(2, AfeSpec::Sum(8), FieldSpec::F64, 8).with_seed(0x7ACE);
    let report = ProcDeployment::launch(cfg)
        .expect("cluster launches")
        .run()
        .expect("pipeline completes");
    assert!(report.node_traces.is_empty());
    assert!(report.merged_trace().is_none());
}
